//! The RE (run-length / repetition) compressed pbit representation (§1.2).
//!
//! A [`Re`] stores a pbit's `2^E`-bit AoB vector as a *period* — a list of
//! `(symbol, run-length)` pairs over interned 64-bit chunks — repeated
//! `reps` times to cover the universe. The Hadamard constants, the values
//! quantum-inspired algorithms actually manipulate, compress to one or two
//! runs regardless of `E`: `H(k)` for `k ≥ 6` is literally `(0^m 1^m)^r`,
//! the paper's run-length-encoding example scaled to chunk granularity.
//!
//! All gate operations work run-zipper-wise with memoized symbol ops, and
//! all measurements walk runs — nothing is ever `O(2^E)` unless the value
//! itself has `O(2^E)` entropy.
//!
//! The period itself is stored in the packed hybrid encoding of
//! [`crate::packed::PackedRuns`] — tagged `u32` command words plus a
//! `RepeatFinder` pass that factors cross-symbol periodicity in the run
//! list — rather than a flat `Vec<Run>`, so structured states compress
//! superlinearly in storage while every operation still runs over the
//! logical runs.

use crate::packed::PackedRuns;
use crate::{BinOp, PbpContext, Sym, CHUNK_BITS, CHUNK_WAYS, SYM_ONE, SYM_ZERO};
use pbp_aob::Aob;

/// One run: `len` consecutive chunks of the same symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Interned chunk symbol.
    pub sym: Sym,
    /// Run length in chunks (≥ 1).
    pub len: u64,
}

/// A compressed pbit: a packed-encoded `period` repeated `reps` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Re {
    period: PackedRuns,
    reps: u64,
}

impl Re {
    /// Logical runs in the stored period — the §1.2 compression measure.
    pub fn storage_runs(&self) -> usize {
        self.period.runs()
    }

    /// Stored period footprint in packed `u32` command words — at most
    /// `2 * storage_runs()` and, on periodic run lists, far below it.
    pub fn packed_words(&self) -> usize {
        self.period.words()
    }

    /// `Repeat` commands in the packed period (cross-symbol periodicity
    /// the `RepeatFinder` factored out).
    pub fn repeat_commands(&self) -> usize {
        self.period.repeat_commands()
    }

    /// Outer repetition count.
    pub fn reps(&self) -> u64 {
        self.reps
    }

    /// Period length in chunks.
    pub fn period_chunks(&self) -> u64 {
        self.period.chunks()
    }

    /// Total chunks covered (must equal the context's universe).
    pub fn total_chunks(&self) -> u64 {
        self.period_chunks() * self.reps
    }

    /// `u32` words a flat `Vec<Run>` period would occupy (16 bytes per
    /// run) — the baseline the packed encoding is measured against.
    pub fn flat_run_words(&self) -> usize {
        self.storage_runs() * 4
    }
}

/// Merge adjacent equal-symbol runs in place.
fn merge_adjacent(runs: &mut Vec<Run>) {
    let mut out: Vec<Run> = Vec::with_capacity(runs.len());
    for r in runs.drain(..) {
        match out.last_mut() {
            Some(last) if last.sym == r.sym => last.len += r.len,
            _ => out.push(r),
        }
    }
    *runs = out;
}

/// Split a run list at an absolute chunk position (splitting a straddling
/// run if necessary). Returns (left, right).
fn split_at_chunk(runs: &[Run], pos: u64) -> (Vec<Run>, Vec<Run>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut acc = 0u64;
    for r in runs {
        if acc >= pos {
            right.push(*r);
        } else if acc + r.len <= pos {
            left.push(*r);
        } else {
            let l = pos - acc;
            left.push(Run { sym: r.sym, len: l });
            right.push(Run { sym: r.sym, len: r.len - l });
        }
        acc += r.len;
    }
    (left, right)
}

impl PbpContext {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// The constant pbit (0 or 1) — one run.
    pub fn constant(&mut self, bit: bool) -> Re {
        let sym = if bit { SYM_ONE } else { SYM_ZERO };
        Re { period: PackedRuns::pack(&[Run { sym, len: 1 }]), reps: self.total_chunks() }
    }

    /// The Hadamard pattern `H(k)`: bit `e` is bit `k` of channel number
    /// `e`. Compresses to ≤ 2 runs for any `k` (the RE representation's
    /// showcase). For `k ≥ universe_ways` the result is all-zeros.
    pub fn hadamard(&mut self, k: u32) -> Re {
        if k >= self.universe_ways() {
            return self.constant(false);
        }
        if k < CHUNK_WAYS {
            let sym = self.sym(pbp_aob::hadamard::LANE[k as usize]);
            return Re {
                period: PackedRuns::pack(&[Run { sym, len: 1 }]),
                reps: self.total_chunks(),
            };
        }
        let m = 1u64 << (k - CHUNK_WAYS);
        Re {
            period: PackedRuns::pack(&[
                Run { sym: SYM_ZERO, len: m },
                Run { sym: SYM_ONE, len: m },
            ]),
            reps: self.total_chunks() / (2 * m),
        }
    }

    /// Import an explicit AoB vector (universe must match; sub-chunk
    /// universes store their single masked chunk symbol, so padding bits
    /// never reach the RE layer).
    pub fn from_aob(&mut self, a: &Aob) -> Re {
        assert_eq!(
            a.ways(),
            self.universe_ways(),
            "AoB degree must match the context universe"
        );
        let mut runs: Vec<Run> = Vec::new();
        for &w in a.words() {
            let sym = self.sym(w);
            match runs.last_mut() {
                Some(last) if last.sym == sym => last.len += 1,
                _ => runs.push(Run { sym, len: 1 }),
            }
        }
        self.build_re(runs, 1)
    }

    /// Expand to an explicit AoB vector (test oracle; only for universes
    /// that fit [`pbp_aob::MAX_WAYS`]).
    pub fn to_aob(&self, re: &Re) -> Aob {
        let ways = self.universe_ways();
        let mut v = Aob::zeros(ways);
        let runs = re.period.decode();
        let mut idx = 0usize;
        for _ in 0..re.reps {
            for r in &runs {
                let pat = self.pattern(r.sym);
                for _ in 0..r.len {
                    v.words_mut()[idx] = pat;
                    idx += 1;
                }
            }
        }
        v
    }

    // ------------------------------------------------------------------
    // Canonicalization
    // ------------------------------------------------------------------

    /// Canonicalize a raw run list — merge adjacent equal-symbol runs,
    /// shrink the period by halving while both halves agree — then pack
    /// it. Packing is deterministic, so structurally equal pbits compare
    /// equal on the packed words.
    fn build_re(&self, mut period: Vec<Run>, mut reps: u64) -> Re {
        merge_adjacent(&mut period);
        loop {
            let pc: u64 = period.iter().map(|r| r.len).sum();
            if pc % 2 != 0 {
                break;
            }
            let (l, r) = split_at_chunk(&period, pc / 2);
            let mut lm = l;
            let mut rm = r;
            merge_adjacent(&mut lm);
            merge_adjacent(&mut rm);
            if lm == rm {
                period = lm;
                reps *= 2;
            } else {
                break;
            }
        }
        Re { period: PackedRuns::pack(&period), reps }
    }

    // ------------------------------------------------------------------
    // Gate operations
    // ------------------------------------------------------------------

    /// Channel-wise NOT.
    pub fn not(&mut self, a: &Re) -> Re {
        let period = a
            .period
            .iter()
            .map(|r| Run { sym: self.not_sym(r.sym), len: r.len })
            .collect();
        self.build_re(period, a.reps)
    }

    fn binop(&mut self, op: BinOp, a: &Re, b: &Re) -> Re {
        let total = self.total_chunks();
        let pa = a.period_chunks();
        let pb = b.period_chunks();
        // Combined period: lcm of the operand periods; anything that does
        // not divide the universe degenerates to the full universe.
        let g = gcd(pa, pb);
        let lcm = pa / g * pb;
        let p = if lcm >= total || total % lcm != 0 { total } else { lcm };

        let mut period = Vec::new();
        let runs_a = a.period.decode();
        let runs_b = b.period.decode();
        let mut ia = RunCursor::new(&runs_a);
        let mut ib = RunCursor::new(&runs_b);
        let mut covered = 0u64;
        let mut steps = 0u64;
        while covered < p {
            steps += 1;
            assert!(
                steps <= 1 << 22,
                "RE operation result exceeds the single-level representation \
                 budget ({} of {} chunks combined); operands with widely \
                 mismatched small periods need nested REs (future work in \
                 the paper, §5)",
                covered,
                p
            );
            let (sa, ra) = ia.current();
            let (sb, rb) = ib.current();
            let step = ra.min(rb).min(p - covered);
            let sym = self.bin_sym(op, sa, sb);
            match period.last_mut() {
                Some(Run { sym: s, len }) if *s == sym => *len += step,
                _ => period.push(Run { sym, len: step }),
            }
            ia.advance(step);
            ib.advance(step);
            covered += step;
        }
        let re = self.build_re(period, total / p);
        crate::telem::RE_GATES.inc();
        crate::telem::RE_COMPRESSION.record(total / re.storage_runs().max(1) as u64);
        crate::telem::RE_PACKED_WORDS.record(re.packed_words() as u64);
        crate::telem::RE_PACKED_RATIO
            .record((re.flat_run_words() / re.packed_words().max(1)) as u64);
        crate::telem::RE_PACKED_REPEATS.add(re.repeat_commands() as u64);
        re
    }

    /// `AND` of two pbits.
    pub fn and(&mut self, a: &Re, b: &Re) -> Re {
        self.binop(BinOp::And, a, b)
    }

    /// `OR` of two pbits.
    pub fn or(&mut self, a: &Re, b: &Re) -> Re {
        self.binop(BinOp::Or, a, b)
    }

    /// `XOR` of two pbits.
    pub fn xor(&mut self, a: &Re, b: &Re) -> Re {
        self.binop(BinOp::Xor, a, b)
    }

    /// Channel-wise multiplexor `sel ? t : f` (the Fredkin/BDD view).
    pub fn mux(&mut self, sel: &Re, t: &Re, f: &Re) -> Re {
        let st = self.and(sel, t);
        let ns = self.not(sel);
        let sf = self.and(&ns, f);
        self.or(&st, &sf)
    }

    /// Semantic equality (structural canonical forms can differ by phase).
    pub fn re_eq(&mut self, a: &Re, b: &Re) -> bool {
        let x = self.xor(a, b);
        !self.re_any(&x)
    }

    // ------------------------------------------------------------------
    // Measurement (all non-destructive, all O(runs))
    // ------------------------------------------------------------------

    /// Symbol at an absolute chunk index.
    fn sym_at_chunk(&self, re: &Re, chunk: u64) -> Sym {
        let pc = re.period_chunks();
        let mut off = chunk % pc;
        for r in re.period.iter() {
            if off < r.len {
                return r.sym;
            }
            off -= r.len;
        }
        unreachable!("offset within period by construction")
    }

    /// `meas`: the bit at channel `e` (wraps modulo the universe).
    pub fn re_get(&self, re: &Re, e: u64) -> bool {
        let e = e & (self.channels() - 1);
        let pat = self.pattern(self.sym_at_chunk(re, e / CHUNK_BITS));
        (pat >> (e % CHUNK_BITS)) & 1 != 0
    }

    /// `next`: lowest channel strictly above `d` holding a 1; `None` if
    /// no such channel exists (the ISA's in-band `0` sentinel is applied
    /// only at the GPR boundary).
    pub fn re_next(&self, re: &Re, d: u64) -> Option<u64> {
        let n = self.channels();
        let start = d.saturating_add(1);
        if start >= n {
            return None;
        }
        let chunk = start / CHUNK_BITS;
        let bit = start % CHUNK_BITS;
        // Partial current chunk.
        let pat = self.pattern(self.sym_at_chunk(re, chunk)) & (u64::MAX << bit);
        if pat != 0 {
            return Some(chunk * CHUNK_BITS + pat.trailing_zeros() as u64);
        }
        // Rest of the current period after this chunk.
        let pc = re.period_chunks();
        let period_idx = chunk / pc;
        let off = chunk % pc + 1; // next chunk within period
        let mut acc = 0u64;
        for r in re.period.iter() {
            let run_end = acc + r.len;
            if run_end > off && r.sym != SYM_ZERO {
                let at = acc.max(off);
                let abs = period_idx * pc + at;
                return Some(abs * CHUNK_BITS + self.pattern(r.sym).trailing_zeros() as u64);
            }
            acc = run_end;
        }
        // First non-zero chunk of a full period, if any periods remain.
        if period_idx + 1 < re.reps {
            let mut acc = 0u64;
            for r in re.period.iter() {
                if r.sym != SYM_ZERO {
                    let abs = (period_idx + 1) * pc + acc;
                    return Some(
                        abs * CHUNK_BITS + self.pattern(r.sym).trailing_zeros() as u64,
                    );
                }
                acc += r.len;
            }
        }
        None
    }

    /// Ones in one period.
    fn period_pop(&self, re: &Re) -> u64 {
        re.period
            .iter()
            .map(|r| r.len * self.pattern(r.sym).count_ones() as u64)
            .sum()
    }

    /// Total population (probability numerator in parts per `2^E`).
    pub fn re_pop_all(&self, re: &Re) -> u64 {
        self.period_pop(re) * re.reps
    }

    /// Ones strictly below channel `n`.
    pub fn re_pop_prefix(&self, re: &Re, n: u64) -> u64 {
        let n = n.min(self.channels());
        let full_chunks = n / CHUNK_BITS;
        let pc = re.period_chunks();
        let mut count = (full_chunks / pc) * self.period_pop(re);
        // Partial period.
        let mut rem = full_chunks % pc;
        for r in re.period.iter() {
            let take = rem.min(r.len);
            count += take * self.pattern(r.sym).count_ones() as u64;
            rem -= take;
            if rem == 0 {
                break;
            }
        }
        // Partial chunk.
        let bits = n % CHUNK_BITS;
        if bits != 0 {
            let pat = self.pattern(self.sym_at_chunk(re, full_chunks));
            count += (pat & ((1u64 << bits) - 1)).count_ones() as u64;
        }
        count
    }

    /// Ones strictly after channel `d` (the `pop` instruction).
    pub fn re_pop_after(&self, re: &Re, d: u64) -> u64 {
        self.re_pop_all(re) - self.re_pop_prefix(re, d.saturating_add(1))
    }

    /// ANY reduction. Symbol ids are canonical, so this is exact (and
    /// padding-safe at sub-chunk universes, where the all-ones symbol is
    /// already masked).
    pub fn re_any(&self, re: &Re) -> bool {
        re.period.iter().any(|r| r.sym != SYM_ZERO)
    }

    /// ALL reduction. Compares symbols against the canonical all-ones
    /// chunk — which at sub-chunk universes is the *masked* ones pattern,
    /// so padding bits never make ALL unreachable.
    pub fn re_all(&self, re: &Re) -> bool {
        re.period.iter().all(|r| r.sym == SYM_ONE)
    }

    /// All 1-valued channels, capped at `limit` results.
    pub fn re_enumerate_ones(&self, re: &Re, limit: usize) -> Vec<u64> {
        let mut out = Vec::new();
        if self.re_get(re, 0) {
            out.push(0);
        }
        let mut e = 0u64;
        while out.len() < limit {
            let Some(nx) = self.re_next(re, e) else { break };
            out.push(nx);
            e = nx;
        }
        out
    }
}

/// Cyclic cursor over a run list.
struct RunCursor<'a> {
    runs: &'a [Run],
    idx: usize,
    used: u64,
}

impl<'a> RunCursor<'a> {
    fn new(runs: &'a [Run]) -> Self {
        RunCursor { runs, idx: 0, used: 0 }
    }

    /// Current symbol and chunks remaining in its run. A single-run period
    /// never changes symbol, so its remaining span is unbounded — this is
    /// what keeps ops between a constant/`H(k<6)` pattern and a huge
    /// pattern O(runs) instead of O(universe).
    fn current(&self) -> (Sym, u64) {
        let r = self.runs[self.idx];
        if self.runs.len() == 1 {
            return (r.sym, u64::MAX);
        }
        (r.sym, r.len - self.used)
    }

    fn advance(&mut self, n: u64) {
        if self.runs.len() == 1 {
            return; // single-run periods never change position meaningfully
        }
        self.used += n;
        while self.used >= self.runs[self.idx].len {
            self.used -= self.runs[self.idx].len;
            self.idx = (self.idx + 1) % self.runs.len();
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_compression_is_constant_size() {
        // §1.2's exponential-factor claim: H(k) is ≤ 2 runs at ANY scale.
        let mut ctx = PbpContext::new(32); // 4 billion channels
        for k in 0..32u32 {
            let h = ctx.hadamard(k);
            assert!(h.storage_runs() <= 2, "H({k}) has {} runs", h.storage_runs());
            assert_eq!(h.total_chunks(), ctx.total_chunks());
            assert_eq!(ctx.re_pop_all(&h), ctx.channels() / 2);
        }
    }

    #[test]
    fn hadamard_matches_aob() {
        let mut ctx = PbpContext::new(12);
        for k in 0..14u32 {
            let h = ctx.hadamard(k);
            assert_eq!(ctx.to_aob(&h), Aob::hadamard(12, k), "k={k}");
        }
    }

    #[test]
    fn constants() {
        let mut ctx = PbpContext::new(10);
        let z = ctx.constant(false);
        let o = ctx.constant(true);
        assert!(!ctx.re_any(&z));
        assert!(ctx.re_all(&o));
        assert_eq!(ctx.re_pop_all(&o), 1024);
        assert_eq!(ctx.to_aob(&z), Aob::zeros(10));
        assert_eq!(ctx.to_aob(&o), Aob::ones(10));
    }

    #[test]
    fn binops_match_aob_differentially() {
        let mut ctx = PbpContext::new(10);
        let values: Vec<Re> = (0..10).map(|k| ctx.hadamard(k)).collect();
        for i in 0..values.len() {
            for j in 0..values.len() {
                let (a, b) = (&values[i], &values[j]);
                let (aa, ab) = (ctx.to_aob(a), ctx.to_aob(b));
                let and = ctx.and(a, b);
                assert_eq!(ctx.to_aob(&and), Aob::and_of(&aa, &ab), "and {i},{j}");
                let or = ctx.or(a, b);
                assert_eq!(ctx.to_aob(&or), Aob::or_of(&aa, &ab));
                let xor = ctx.xor(a, b);
                assert_eq!(ctx.to_aob(&xor), Aob::xor_of(&aa, &ab));
            }
        }
    }

    #[test]
    fn not_and_roundtrip_from_aob() {
        let mut ctx = PbpContext::new(8);
        let mut v = Aob::zeros(8);
        for e in [0u64, 7, 63, 64, 65, 200, 255] {
            v.set(e, true);
        }
        let re = ctx.from_aob(&v);
        assert_eq!(ctx.to_aob(&re), v);
        let n = ctx.not(&re);
        assert_eq!(ctx.to_aob(&n), v.not_of());
        let nn = ctx.not(&n);
        assert!(ctx.re_eq(&nn, &re));
    }

    #[test]
    fn measurement_matches_aob() {
        let mut ctx = PbpContext::new(9);
        let h3 = ctx.hadamard(3);
        let h7 = ctx.hadamard(7);
        let v = ctx.and(&h3, &h7);
        let oracle = ctx.to_aob(&v);
        for e in 0..512u64 {
            assert_eq!(ctx.re_get(&v, e), oracle.get(e), "get {e}");
        }
        for d in 0..512u64 {
            assert_eq!(ctx.re_next(&v, d), oracle.next(d), "next {d}");
            assert_eq!(ctx.re_pop_after(&v, d), oracle.pop_after(d), "pop {d}");
        }
        assert_eq!(ctx.re_pop_all(&v), oracle.pop_all());
        assert_eq!(ctx.re_any(&v), oracle.any());
        assert_eq!(ctx.re_all(&v), oracle.all());
        assert_eq!(
            ctx.re_enumerate_ones(&v, 10_000),
            oracle.enumerate_ones()
        );
    }

    #[test]
    fn paper_next_example_via_re() {
        // The §2.7 worked example, on the compressed representation.
        let mut ctx = PbpContext::new(16);
        let h4 = ctx.hadamard(4);
        assert_eq!(ctx.re_next(&h4, 42), Some(48));
    }

    #[test]
    fn giant_universe_operations_stay_tiny() {
        // E = 36: a 64-billion-channel pbit in a few runs — far beyond
        // what any explicit AoB could store.
        let mut ctx = PbpContext::new(36);
        let a = ctx.hadamard(30);
        let b = ctx.hadamard(35);
        let c = ctx.and(&a, &b);
        // AND of H(30) and H(35) interleaves at the 2^24-chunk scale: the
        // run count is ~2^(35-30), still astronomically below the 2^30
        // chunks an explicit AoB would need.
        assert!(c.storage_runs() <= 40, "{} runs", c.storage_runs());
        assert_eq!(ctx.re_pop_all(&c), ctx.channels() / 4);
        // next across a huge zero span:
        assert_eq!(ctx.re_next(&c, 0), Some((1 << 30) | (1 << 35)));
        // pops line up with the analytic value
        assert_eq!(ctx.re_pop_prefix(&c, 1 << 35), 0);
        // The packed encoding factors the (0^a 1^a) cadence: far fewer
        // command words than even the logical run count.
        assert!(
            c.packed_words() < c.storage_runs(),
            "{} words for {} runs",
            c.packed_words(),
            c.storage_runs()
        );
        assert!(c.repeat_commands() >= 1, "RepeatFinder must fire on H&H interleave");
    }

    #[test]
    fn packed_encoding_roundtrips_through_aob() {
        // Sweep structured and unstructured values: to_aob must invert
        // from_aob exactly with the packed period in between.
        let mut ctx = PbpContext::new(10);
        let mut patterns: Vec<Aob> = (0..12).map(|k| Aob::hadamard(10, k)).collect();
        let mut odd = Aob::zeros(10);
        for e in [0u64, 1, 63, 64, 500, 777, 1023] {
            odd.set(e, true);
        }
        patterns.push(odd);
        for v in &patterns {
            let re = ctx.from_aob(v);
            assert_eq!(&ctx.to_aob(&re), v);
            assert!(re.packed_words() <= re.flat_run_words());
        }
    }

    #[test]
    fn sub_chunk_universe_measurements_respect_padding() {
        // ways < CHUNK_WAYS: the universe is smaller than one 64-bit
        // chunk. The store interns masked chunks, so ALL must hold for
        // the masked ones value and nothing may leak from padding bits.
        for ways in [1u32, 3, 5] {
            let mut ctx = PbpContext::new(ways);
            let n = 1u64 << ways;
            assert_eq!(ctx.total_chunks(), 1, "ways={ways}");

            let o = ctx.constant(true);
            let z = ctx.constant(false);
            assert!(ctx.re_all(&o), "ways={ways}: masked ones must satisfy ALL");
            assert!(ctx.re_any(&o));
            assert!(!ctx.re_any(&z));
            assert_eq!(ctx.re_pop_all(&o), n);
            assert_eq!(ctx.re_pop_all(&z), 0);
            assert_eq!(ctx.to_aob(&o), Aob::ones(ways));

            // NOT of ones is zeros — only true if padding stayed clear.
            let nz = ctx.not(&o);
            assert!(!ctx.re_any(&nz), "ways={ways}: padding leaked through NOT");

            // next never reports a padding channel.
            for d in 0..2 * n {
                match ctx.re_next(&o, d) {
                    Some(e) => assert!(e > d && e < n, "ways={ways} d={d} e={e}"),
                    None => assert!(d + 1 >= n, "ways={ways} d={d}"),
                }
            }

            // Round-trip and gate parity against the explicit substrate.
            for k in 0..ways {
                let h = ctx.hadamard(k);
                let oracle = Aob::hadamard(ways, k);
                assert_eq!(ctx.to_aob(&h), oracle, "ways={ways} k={k}");
                let re2 = ctx.from_aob(&oracle);
                assert!(ctx.re_eq(&h, &re2));
                let x = ctx.xor(&h, &o);
                assert_eq!(ctx.to_aob(&x), Aob::xor_of(&oracle, &Aob::ones(ways)));
                assert_eq!(ctx.re_pop_all(&h), n / 2);
            }
        }
    }

    #[test]
    fn mux_identity() {
        let mut ctx = PbpContext::new(8);
        let s = ctx.hadamard(2);
        let t = ctx.hadamard(5);
        let f = ctx.hadamard(7);
        let m = ctx.mux(&s, &t, &f);
        let oracle = Aob::mux_of(
            &Aob::hadamard(8, 2),
            &Aob::hadamard(8, 5),
            &Aob::hadamard(8, 7),
        );
        assert_eq!(ctx.to_aob(&m), oracle);
    }

    #[test]
    fn period_reduction_finds_small_period() {
        let mut ctx = PbpContext::new(12);
        // Build H(6) explicitly through from_aob: period must shrink to 2.
        let re = ctx.from_aob(&Aob::hadamard(12, 6));
        assert_eq!(re.storage_runs(), 2);
        assert_eq!(re.period_chunks(), 2);
        assert_eq!(re.reps(), 32);
    }

    #[test]
    fn re_eq_detects_phase_equivalent_values() {
        let mut ctx = PbpContext::new(8);
        let h = ctx.hadamard(7);
        let via_aob = ctx.from_aob(&Aob::hadamard(8, 7));
        assert!(ctx.re_eq(&h, &via_aob));
        let other = ctx.hadamard(6);
        assert!(!ctx.re_eq(&h, &other));
    }
}

impl PbpContext {
    /// Render a pbit in the paper's §1.2 notation: runs as `0^n` / `1^n` /
    /// `s42^n` (for non-trivial chunk symbols), the period parenthesized
    /// and raised to its repetition count — e.g. `H(7)` at 16-way prints
    /// `(0^2 1^2)^256`. Lengths are in 64-bit chunks.
    pub fn re_notation(&self, re: &Re) -> String {
        // Symbols are canonical ids, so the constant chunks are named by
        // id — exact even at sub-chunk universes where the ones pattern
        // is masked.
        let sym_name = |s: Sym| {
            if s == SYM_ZERO {
                "0".to_string()
            } else if s == SYM_ONE {
                "1".to_string()
            } else {
                format!("s{s}")
            }
        };
        let mut body = String::new();
        for (i, r) in re.period.iter().enumerate() {
            if i > 0 {
                body.push(' ');
            }
            let sym = sym_name(r.sym);
            if r.len == 1 {
                body.push_str(&sym);
            } else {
                body.push_str(&format!("{sym}^{}", r.len));
            }
        }
        if re.reps == 1 {
            body
        } else if re.storage_runs() == 1 {
            // A single run repeated: fold the repetition into the exponent.
            let r = re.period.iter().next().expect("periods are never empty");
            let sym = sym_name(r.sym);
            let total = r.len * re.reps;
            if total == 1 { sym } else { format!("{sym}^{total}") }
        } else {
            format!("({body})^{}", re.reps)
        }
    }
}

#[cfg(test)]
mod notation_tests {
    use super::*;

    #[test]
    fn paper_style_notation() {
        let mut ctx = PbpContext::new(16);
        let zero = ctx.constant(false);
        assert_eq!(ctx.re_notation(&zero), "0^1024");
        let one = ctx.constant(true);
        assert_eq!(ctx.re_notation(&one), "1^1024");
        // H(7) at 16-way: (0^2 1^2)^256 in chunks — the paper's
        // run-length-encoding example shape.
        let h7 = ctx.hadamard(7);
        assert_eq!(ctx.re_notation(&h7), "(0^2 1^2)^256");
        let h15 = ctx.hadamard(15);
        assert_eq!(ctx.re_notation(&h15), "0^512 1^512"); // reps == 1: no wrapper
        // Sub-chunk patterns show as interned symbols.
        let h0 = ctx.hadamard(0);
        assert!(ctx.re_notation(&h0).starts_with('s'));
    }

    #[test]
    fn notation_roundtrips_semantics_visually() {
        // Not a parser — but the notation must reflect pops: count the 1s.
        let mut ctx = PbpContext::new(16);
        let h10 = ctx.hadamard(10);
        let n = ctx.re_notation(&h10);
        assert_eq!(n, "(0^16 1^16)^32");
        // 16 chunks * 64 bits * 32 reps = 32768 ones.
        assert_eq!(ctx.re_pop_all(&h10), 32_768);
    }
}
