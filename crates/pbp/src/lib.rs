#![warn(missing_docs)]
//! # pbp — the parallel bit pattern model (the software-only prototype)
//!
//! This crate rebuilds the LCPC'20 software-only PBP engine the paper's
//! Figure 9 program runs on, and the §1.2 **RE representation**: instead of
//! storing a `2^E`-bit AoB vector explicitly, a pbit is stored as a
//! run-length-compressed *regular expression* over fixed-size chunk
//! symbols, with an outer repetition — `(0^a 1^a)^b` style patterns.
//! "By storing and operating directly on REs, parallel bit pattern
//! computing reduces both storage requirements and computational
//! complexity by as much as an exponential factor."
//!
//! * Chunks are 64-bit words, **hash-consed** in a shared
//!   [`pbp_aob::ChunkStore`] — the same content-addressed store that backs
//!   the Qat register file, here at [`CHUNK_WAYS`]-way degree. An RE
//!   symbol ([`Sym`]) **is** a store [`pbp_aob::ChunkId`], so
//!   run-length-compressed values beyond `WAYS` share chunks structurally
//!   with everything else interned in the context (the prototype used
//!   4096-bit chunks; the paper's own hardware proposal is that 65,536-bit
//!   AoB values become the RE symbols — the chunk size is a representation
//!   parameter, and 64 bits maps naturally onto host words).
//! * Gate operations act symbol-wise with memoization (the store's op
//!   cache), so an operation on two pbits costs `O(runs)` — independent of
//!   `2^E`.
//! * Measurement (`get`/`next`/`pop`/`any`/`all`) walks runs, giving the
//!   `O(1)`-ish summaries of §2.7 even for huge universes.
//! * The [`Pint`] word-level API reproduces the Figure 9 programming
//!   model: `pint_mk`, `pint_h`, `pint_add`, `pint_mul`, `pint_eq`,
//!   non-destructive `measure`.
//!
//! The representation is differentially tested against the explicit
//! [`pbp_aob::Aob`] substrate for universes small enough to expand.

pub mod algos;
mod packed;
mod pint;
mod re;
pub mod storage;
pub(crate) mod telem;
pub mod tree;

pub use algos::Cnf;
pub use pint::{MeasuredValue, Pint};
pub use re::Re;
pub use storage::SparseReFile;
pub use tree::{PTree, TPint, TreeCtx, TreeError};

use pbp_aob::{ChunkId, ChunkStore, GateOp, InternStats, WaysError};

/// Chunk width in bits (one symbol covers this many entanglement channels).
pub const CHUNK_BITS: u64 = 64;
/// log2 of the chunk width.
pub const CHUNK_WAYS: u32 = 6;

/// Interned chunk-symbol id — a [`ChunkStore`] id, so RE symbols are store
/// ids and chunk sharing is structural.
pub type Sym = ChunkId;

/// Binary gate selector for memoized symbol ops (alias of the store's).
pub(crate) type BinOp = GateOp;

/// The PBP execution context: universe size, the hash-consed symbol store
/// (with its memoized gate kernels), and the entanglement-channel
/// allocator.
#[derive(Debug, Clone)]
pub struct PbpContext {
    universe_ways: u32,
    /// Hash-consed chunk symbols + memoized symbol ops, at [`CHUNK_WAYS`]
    /// degree (one 64-bit word per chunk).
    store: ChunkStore,
    /// Next unallocated entanglement-channel dimension.
    next_dim: u32,
}

/// Symbol id of the all-zeros chunk (the store's canonical zero).
pub const SYM_ZERO: Sym = pbp_aob::ID_ZERO;
/// Symbol id of the all-ones chunk (the store's canonical one).
pub const SYM_ONE: Sym = pbp_aob::ID_ONE;

/// Smallest supported `universe_ways`.
pub const MIN_UNIVERSE_WAYS: u32 = 1;
/// Largest supported `universe_ways` (the run arithmetic is exact far
/// beyond that, but 2^40 channels is already a trillion possible worlds).
pub const MAX_UNIVERSE_WAYS: u32 = 40;

impl PbpContext {
    /// A context whose universe has `2^universe_ways` entanglement
    /// channels, or a typed [`WaysError`] outside
    /// [`MIN_UNIVERSE_WAYS`]`..=`[`MAX_UNIVERSE_WAYS`].
    ///
    /// Universes smaller than one chunk (`universe_ways < CHUNK_WAYS`)
    /// are supported by interning at the sub-chunk degree: the store
    /// masks padding bits on every interned word, so the RE layer's
    /// canonical zero/one symbols are already the *masked* constants and
    /// no measurement can observe padding.
    pub fn try_new(universe_ways: u32) -> Result<Self, WaysError> {
        Self::try_new_warm(universe_ways, None)
    }

    /// Like [`PbpContext::try_new`], but adopting a registered warm
    /// snapshot (see [`pbp_aob::warm`]) when its degree matches the
    /// context's sub-chunk symbol degree — the RE layer then starts with
    /// the snapshot's interned symbols and memoized symbol ops. A
    /// mismatched or absent snapshot falls back to a cold store.
    pub fn try_new_warm(
        universe_ways: u32,
        warm: Option<pbp_aob::WarmStoreId>,
    ) -> Result<Self, WaysError> {
        WaysError::check(universe_ways, MIN_UNIVERSE_WAYS, MAX_UNIVERSE_WAYS)?;
        // The store pre-interns the constant bank [0, 1, H(0)..], so
        // SYM_ZERO / SYM_ONE are its canonical first two ids. Sub-chunk
        // universes get a store at their own degree, which keeps every
        // symbol masked to the live channels.
        let degree = universe_ways.min(CHUNK_WAYS);
        let store =
            pbp_aob::warm::attach(warm, degree).unwrap_or_else(|| ChunkStore::new(degree));
        Ok(PbpContext { universe_ways, store, next_dim: 0 })
    }

    /// Panicking convenience wrapper around [`PbpContext::try_new`].
    pub fn new(universe_ways: u32) -> Self {
        Self::try_new(universe_ways).unwrap_or_else(|e| {
            panic!(
                "universe_ways must be in {MIN_UNIVERSE_WAYS}..={MAX_UNIVERSE_WAYS}: {e}"
            )
        })
    }

    /// log2 of the number of entanglement channels.
    pub fn universe_ways(&self) -> u32 {
        self.universe_ways
    }

    /// Number of entanglement channels, `2^universe_ways`.
    pub fn channels(&self) -> u64 {
        1u64 << self.universe_ways
    }

    /// Universe size in chunks (1 for sub-chunk universes, whose single
    /// chunk is masked to the live channels).
    pub fn total_chunks(&self) -> u64 {
        1u64 << self.universe_ways.saturating_sub(CHUNK_WAYS)
    }

    /// Number of distinct chunk symbols interned so far (includes the
    /// store's 8-entry constant bank).
    pub fn symbol_count(&self) -> usize {
        self.store.len()
    }

    /// Cache hit/miss/eviction counters of the symbol store.
    pub fn intern_stats(&self) -> InternStats {
        self.store.stats()
    }

    /// Intern a chunk pattern.
    pub(crate) fn sym(&mut self, chunk: u64) -> Sym {
        self.store.intern_word(chunk)
    }

    /// Pattern of a symbol.
    #[inline]
    pub(crate) fn pattern(&self, s: Sym) -> u64 {
        self.store.aob(s).words()[0]
    }

    /// Memoized binary op on symbols.
    pub(crate) fn bin_sym(&mut self, op: BinOp, a: Sym, b: Sym) -> Sym {
        self.store.binop(op, a, b)
    }

    /// Memoized NOT on a symbol.
    pub(crate) fn not_sym(&mut self, a: Sym) -> Sym {
        self.store.not(a)
    }

    /// Allocate `n` fresh entanglement-channel dimensions (the "disjoint
    /// channels" discipline Figure 9's factoring depends on). Returns the
    /// first dimension index.
    pub fn alloc_dims(&mut self, n: u32) -> u32 {
        let first = self.next_dim;
        assert!(
            first + n <= self.universe_ways,
            "out of entanglement dimensions: {} + {n} > {}",
            first,
            self.universe_ways
        );
        self.next_dim += n;
        first
    }

    /// Dimensions allocated so far.
    pub fn dims_used(&self) -> u32 {
        self.next_dim
    }

    /// Reset the dimension allocator (symbols stay interned).
    pub fn reset_dims(&mut self) {
        self.next_dim = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The store's preloaded constant bank: 0, 1, H(0)..H(5).
    const BANK: usize = 8;

    #[test]
    fn context_basics() {
        let ctx = PbpContext::new(16);
        assert_eq!(ctx.channels(), 65_536);
        assert_eq!(ctx.total_chunks(), 1024);
        assert_eq!(ctx.symbol_count(), BANK);
    }

    #[test]
    fn out_of_range_universe_is_a_typed_error() {
        assert_eq!(
            PbpContext::try_new(0).unwrap_err(),
            pbp_aob::WaysError { ways: 0, min: MIN_UNIVERSE_WAYS, max: MAX_UNIVERSE_WAYS }
        );
        assert!(PbpContext::try_new(41).is_err());
        // Sub-chunk universes are supported (masked single-chunk store).
        let ctx = PbpContext::try_new(5).unwrap();
        assert_eq!(ctx.channels(), 32);
        assert_eq!(ctx.total_chunks(), 1);
    }

    #[test]
    #[should_panic(expected = "universe_ways")]
    fn too_large_universe_rejected() {
        PbpContext::new(41);
    }

    #[test]
    fn interning_dedupes() {
        let mut ctx = PbpContext::new(8);
        let a = ctx.sym(0xDEAD_BEEF);
        let b = ctx.sym(0xDEAD_BEEF);
        assert_eq!(a, b);
        assert_eq!(ctx.symbol_count(), BANK + 1);
    }

    #[test]
    fn canonical_symbols_match_store_bank() {
        let mut ctx = PbpContext::new(8);
        assert_eq!(ctx.sym(0), SYM_ZERO);
        assert_eq!(ctx.sym(u64::MAX), SYM_ONE);
        // H(0)'s chunk word is the store's canonical H(0).
        let h0 = ctx.sym(pbp_aob::hadamard::LANE[0]);
        assert_eq!(h0.raw(), 2);
    }

    #[test]
    fn memoized_ops_hit_cache() {
        let mut ctx = PbpContext::new(8);
        let a = ctx.sym(0xF0F0_F0F0_F0F0_F0F0);
        let r1 = ctx.bin_sym(BinOp::And, a, SYM_ONE);
        let r2 = ctx.bin_sym(BinOp::And, a, SYM_ONE);
        assert_eq!(r1, r2);
        assert_eq!(r1, a);
        let n = ctx.not_sym(SYM_ZERO);
        assert_eq!(n, SYM_ONE);
        assert!(ctx.intern_stats().hits >= 2);
    }

    #[test]
    fn dimension_allocator() {
        let mut ctx = PbpContext::new(10);
        assert_eq!(ctx.alloc_dims(4), 0);
        assert_eq!(ctx.alloc_dims(4), 4);
        assert_eq!(ctx.dims_used(), 8);
        ctx.reset_dims();
        assert_eq!(ctx.alloc_dims(10), 0);
    }

    #[test]
    #[should_panic(expected = "out of entanglement dimensions")]
    fn overallocation_panics() {
        let mut ctx = PbpContext::new(8);
        ctx.alloc_dims(9);
    }
}
