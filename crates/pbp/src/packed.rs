//! Packed hybrid run encoding for the RE representation.
//!
//! A flat `Vec<Run>` spends 16 bytes per run (a 4-byte interned symbol id,
//! padding, and an 8-byte chunk length) even though almost every run in
//! practice is "a few all-zeros chunks" or "a few all-ones chunks", and
//! structured states (Hadamard banks, shifted constants) repeat whole
//! *sequences* of runs. [`PackedRuns`] stores a period as a sequence of
//! little `u32` command words instead, with the command tag packed into
//! the low 3 bits:
//!
//! | tag | name     | payload (`w >> 3`, 29 bits) | extra word           |
//! |-----|----------|-----------------------------|----------------------|
//! | 0   | `Zeros`  | run length in chunks        | —                    |
//! | 1   | `Ones`   | run length in chunks        | —                    |
//! | 2   | `Lit`    | symbol id                   | — (single chunk)     |
//! | 3   | `LitRun` | run length in chunks        | raw symbol id        |
//! | 4   | `Repeat` | length in runs              | start run index      |
//! | 5   | `Extend` | extra chunks                | — (grows prior run)  |
//!
//! so the common constant runs cost one word (4 bytes, a 4x saving), a
//! single odd chunk costs one word, and an arbitrary run costs two.
//!
//! **Literal spill rule.** Length and symbol payloads are 29 bits. A run
//! longer than `2^29 - 1` chunks spills: the base command carries the
//! first `2^29 - 1` chunks and one `Extend` command follows per further
//! `2^29 - 1` chunks, growing the *same* logical run (so spilling never
//! changes the decoded run list, only the word count). A single-chunk
//! symbol whose raw id does not fit 29 bits uses the two-word `LitRun`
//! form instead of `Lit`.
//!
//! **RepeatFinder.** Before encoding, a greedy LZ pass factors the run
//! list against itself: `Repeat { start, len }` re-emits `len`
//! already-decoded runs beginning at logical run index `start`. Matches
//! are found with an incrementally maintained sorted suffix table
//! (binary-search insertion, longest-common-prefix check against the two
//! lexicographic neighbors — the Aureole `RepeatFinder` construction, at
//! run-token granularity). This is what makes cross-symbol periodicity —
//! a Hadamard bank's `(0^a 1^a)` cadence interleaved with other
//! structure — compress *superlinearly*: each repeat command can cover
//! every run seen so far, so `n` repetitions of a motif cost `O(log n)`
//! commands instead of `O(n)` runs.
//!
//! Invariants the encoder maintains (and the tests pin):
//!
//! * **Exactness** — `decode(pack(runs)) == runs` for every run list
//!   (repeats are token-aligned and copy `Run` structs verbatim, so no
//!   resplitting or remerging can occur).
//! * **Back-reference** — a `Repeat`'s `start` is always strictly below
//!   the current logical run index; self-overlapping repeats
//!   (`start + len` past the current index) are legal and decode
//!   run-by-run, exactly like LZ77.
//! * **Determinism** — packing is a pure function of the run list: equal
//!   run lists produce identical words, so the derived equality on
//!   [`PackedRuns`] coincides with run-list equality and corpus replays
//!   are bit-stable.

use crate::re::Run;
use crate::{Sym, SYM_ONE, SYM_ZERO};

/// Low bits of every command word that carry the tag.
const TAG_BITS: u32 = 3;
/// Largest length / symbol payload a single command word carries.
const MAX_PAYLOAD: u64 = (1u64 << (32 - TAG_BITS)) - 1;

const TAG_ZEROS: u32 = 0;
const TAG_ONES: u32 = 1;
const TAG_LIT: u32 = 2;
const TAG_LIT_RUN: u32 = 3;
const TAG_REPEAT: u32 = 4;
const TAG_EXTEND: u32 = 5;

/// A repeat must cover at least this many runs to be emitted (a repeat
/// costs two words; three constant runs cost three).
const MIN_REPEAT_RUNS: usize = 3;
/// Run lists longer than this skip the repeat pass entirely (the storage
/// win is already enormous at this size and the suffix table's insertion
/// cost would dominate encode time).
const MAX_FINDER_RUNS: usize = 1 << 13;
/// Suffix comparisons stop after this many tokens; ties break by
/// position, keeping the table's order total and deterministic.
const MAX_CMP_DEPTH: usize = 512;

/// A period's run list in the packed hybrid encoding. See the module
/// docs for the format.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedRuns {
    words: Vec<u32>,
    runs: u32,
    chunks: u64,
    repeats: u32,
}

impl PackedRuns {
    /// Encode a run list (adjacent runs must already be merged and every
    /// length non-zero — the RE layer's canonical form).
    pub fn pack(runs: &[Run]) -> PackedRuns {
        debug_assert!(runs.iter().all(|r| r.len > 0));
        let chunks: u64 = runs.iter().map(|r| r.len).sum();
        let mut words = Vec::with_capacity(runs.len());
        let mut repeats = 0u32;
        let mut i = 0usize;
        let mut finder = RepeatFinder::new(runs);
        while i < runs.len() {
            match finder.longest_match(i) {
                Some((start, len)) => {
                    words.push(TAG_REPEAT | ((len as u32) << TAG_BITS));
                    words.push(start as u32);
                    repeats += 1;
                    finder.commit(i, len);
                    i += len;
                }
                None => {
                    encode_run(&mut words, runs[i]);
                    finder.commit(i, 1);
                    i += 1;
                }
            }
        }
        PackedRuns { words, runs: runs.len() as u32, chunks, repeats }
    }

    /// Logical (decoded) run count.
    pub fn runs(&self) -> usize {
        self.runs as usize
    }

    /// Total chunks the period covers.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Stored command words (the packed footprint, in `u32`s).
    pub fn words(&self) -> usize {
        self.words.len()
    }

    /// `Repeat` commands in the stored stream.
    pub fn repeat_commands(&self) -> usize {
        self.repeats as usize
    }

    /// Expand back to the flat run list.
    pub fn decode(&self) -> Vec<Run> {
        let mut out: Vec<Run> = Vec::with_capacity(self.runs as usize);
        let mut k = 0usize;
        while k < self.words.len() {
            let w = self.words[k];
            let tag = w & ((1 << TAG_BITS) - 1);
            let payload = (w >> TAG_BITS) as u64;
            match tag {
                TAG_ZEROS => out.push(Run { sym: SYM_ZERO, len: payload }),
                TAG_ONES => out.push(Run { sym: SYM_ONE, len: payload }),
                TAG_LIT => {
                    out.push(Run { sym: Sym::from_raw(payload as u32), len: 1 })
                }
                TAG_LIT_RUN => {
                    k += 1;
                    out.push(Run { sym: Sym::from_raw(self.words[k]), len: payload });
                }
                TAG_REPEAT => {
                    k += 1;
                    let start = self.words[k] as usize;
                    // May self-overlap: copy run-by-run so later source
                    // indices read runs this very command produced.
                    for t in 0..payload as usize {
                        let r = out[start + t];
                        out.push(r);
                    }
                }
                TAG_EXTEND => out.last_mut().expect("extend follows a run").len += payload,
                _ => unreachable!("tag {tag}"),
            }
            k += 1;
        }
        out
    }

    /// Iterate the logical runs. Streams straight off the command words
    /// when no `Repeat` is present (the common case for small periods);
    /// otherwise decodes once and drains the buffer.
    pub fn iter(&self) -> RunIter<'_> {
        if self.repeats == 0 {
            RunIter(IterInner::Stream { words: &self.words, k: 0 })
        } else {
            RunIter(IterInner::Buffered(self.decode().into_iter()))
        }
    }
}

/// Emit one run as command words, applying the literal spill rule.
fn encode_run(words: &mut Vec<u32>, r: Run) {
    let first = r.len.min(MAX_PAYLOAD);
    if r.sym == SYM_ZERO {
        words.push(TAG_ZEROS | ((first as u32) << TAG_BITS));
    } else if r.sym == SYM_ONE {
        words.push(TAG_ONES | ((first as u32) << TAG_BITS));
    } else if r.len == 1 && (r.sym.raw() as u64) <= MAX_PAYLOAD {
        words.push(TAG_LIT | (r.sym.raw() << TAG_BITS));
    } else {
        words.push(TAG_LIT_RUN | ((first as u32) << TAG_BITS));
        words.push(r.sym.raw());
    }
    let mut rest = r.len - first;
    while rest > 0 {
        let take = rest.min(MAX_PAYLOAD);
        words.push(TAG_EXTEND | ((take as u32) << TAG_BITS));
        rest -= take;
    }
}

/// Iterator over a [`PackedRuns`]'s logical runs.
pub struct RunIter<'a>(IterInner<'a>);

enum IterInner<'a> {
    Stream { words: &'a [u32], k: usize },
    Buffered(std::vec::IntoIter<Run>),
}

impl Iterator for RunIter<'_> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        match &mut self.0 {
            IterInner::Buffered(it) => it.next(),
            IterInner::Stream { words, k } => {
                if *k >= words.len() {
                    return None;
                }
                let w = words[*k];
                let tag = w & ((1 << TAG_BITS) - 1);
                let payload = (w >> TAG_BITS) as u64;
                *k += 1;
                let mut run = match tag {
                    TAG_ZEROS => Run { sym: SYM_ZERO, len: payload },
                    TAG_ONES => Run { sym: SYM_ONE, len: payload },
                    TAG_LIT => Run { sym: Sym::from_raw(payload as u32), len: 1 },
                    TAG_LIT_RUN => {
                        let sym = Sym::from_raw(words[*k]);
                        *k += 1;
                        Run { sym, len: payload }
                    }
                    _ => unreachable!("stream iteration only without repeats"),
                };
                // Fold any spill continuation into the logical run.
                while *k < words.len()
                    && words[*k] & ((1 << TAG_BITS) - 1) == TAG_EXTEND
                {
                    run.len += (words[*k] >> TAG_BITS) as u64;
                    *k += 1;
                }
                Some(run)
            }
        }
    }
}

/// Greedy LZ matcher over run tokens, backed by an incrementally built
/// sorted suffix table.
struct RepeatFinder<'a> {
    toks: &'a [Run],
    /// Suffix start positions, kept sorted by (capped) lexicographic
    /// order of `toks[p..]`. Only positions already emitted (strictly
    /// below the encoder's cursor) are present, so every match is a
    /// legal back-reference.
    table: Vec<u32>,
    enabled: bool,
}

impl<'a> RepeatFinder<'a> {
    fn new(toks: &'a [Run]) -> Self {
        let enabled = toks.len() > MIN_REPEAT_RUNS && toks.len() <= MAX_FINDER_RUNS;
        RepeatFinder { toks, table: Vec::new(), enabled }
    }

    /// Capped lexicographic order of the suffixes at `a` and `b`, ties
    /// broken by position so the table's order is total.
    fn cmp_suffix(&self, a: usize, b: usize) -> std::cmp::Ordering {
        let toks = self.toks;
        for d in 0..MAX_CMP_DEPTH {
            match (toks.get(a + d), toks.get(b + d)) {
                (Some(x), Some(y)) => {
                    let o = (x.sym.raw(), x.len).cmp(&(y.sym.raw(), y.len));
                    if o != std::cmp::Ordering::Equal {
                        return o;
                    }
                }
                (None, None) => break,
                (None, Some(_)) => return std::cmp::Ordering::Less,
                (Some(_), None) => return std::cmp::Ordering::Greater,
            }
        }
        a.cmp(&b)
    }

    /// Common-prefix length of the suffixes at `i` and `j`, capped at the
    /// end of the token list and the command payload width.
    fn lcp(&self, i: usize, j: usize) -> usize {
        let toks = self.toks;
        let cap = (toks.len() - i).min(MAX_PAYLOAD as usize);
        let mut n = 0;
        while n < cap && j + n < toks.len() && toks[i + n] == toks[j + n] {
            n += 1;
        }
        n
    }

    /// Longest back-reference for the suffix starting at `i`, as
    /// `(start, len)` with `start < i`, or `None` when no match clears
    /// [`MIN_REPEAT_RUNS`].
    fn longest_match(&self, i: usize) -> Option<(usize, usize)> {
        if !self.enabled || self.table.is_empty() {
            return None;
        }
        let ins = self
            .table
            .binary_search_by(|&p| self.cmp_suffix(p as usize, i))
            .unwrap_or_else(|e| e);
        let mut best = (0usize, 0usize);
        for cand in [ins.checked_sub(1), Some(ins)].into_iter().flatten() {
            if let Some(&p) = self.table.get(cand) {
                let l = self.lcp(i, p as usize);
                if l > best.1 {
                    best = (p as usize, l);
                }
            }
        }
        (best.1 >= MIN_REPEAT_RUNS).then_some(best)
    }

    /// Record that positions `i..i + n` have been emitted (literally or
    /// via a repeat), making their suffixes eligible match sources.
    fn commit(&mut self, i: usize, n: usize) {
        if !self.enabled {
            return;
        }
        for p in i..i + n {
            let ins = self
                .table
                .binary_search_by(|&q| self.cmp_suffix(q as usize, p))
                .unwrap_or_else(|e| e);
            self.table.insert(ins, p as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbp_aob::ChunkId;

    fn run(sym: u32, len: u64) -> Run {
        Run { sym: ChunkId::from_raw(sym), len }
    }

    fn roundtrip(runs: &[Run]) -> PackedRuns {
        let p = PackedRuns::pack(runs);
        assert_eq!(p.decode(), runs, "decode(pack) must be exact");
        assert_eq!(p.iter().collect::<Vec<_>>(), runs, "iter must match decode");
        assert_eq!(p.runs(), runs.len());
        assert_eq!(p.chunks(), runs.iter().map(|r| r.len).sum::<u64>());
        p
    }

    #[test]
    fn constant_runs_cost_one_word() {
        let p = roundtrip(&[run(0, 1000), run(1, 7)]);
        assert_eq!(p.words(), 2);
        assert_eq!(p.repeat_commands(), 0);
    }

    #[test]
    fn literal_forms() {
        // Single odd chunk: one word. Multi-chunk odd symbol: two words.
        let p = roundtrip(&[run(9, 1)]);
        assert_eq!(p.words(), 1);
        let p = roundtrip(&[run(9, 5)]);
        assert_eq!(p.words(), 2);
    }

    #[test]
    fn spill_rule_splits_giant_runs() {
        // 2^33 chunks: base word + Extend continuations, one logical run.
        let p = roundtrip(&[run(0, 1 << 33), run(1, 1)]);
        assert_eq!(p.runs(), 2);
        assert!(p.words() > 2, "giant run must spill");
    }

    #[test]
    fn periodic_run_lists_compress_superlinearly() {
        // 512 runs of a two-run motif: greedy self-overlapping repeats
        // cover the tail in O(log n) commands.
        let mut runs = Vec::new();
        for _ in 0..256 {
            runs.push(run(0, 3));
            runs.push(run(1, 5));
        }
        let p = roundtrip(&runs);
        assert!(p.repeat_commands() >= 1);
        assert!(
            p.words() <= 24,
            "512-run periodic list should pack far below linear: {} words",
            p.words()
        );
    }

    #[test]
    fn shifted_motifs_are_found_across_symbols() {
        // A "Hadamard bank" shape: distinct literal symbols, but the
        // 4-run motif repeats — RepeatFinder must catch it even though
        // no single run repeats adjacently.
        let motif = [run(7, 2), run(0, 4), run(8, 2), run(1, 4)];
        let mut runs = Vec::new();
        for _ in 0..64 {
            runs.extend_from_slice(&motif);
        }
        let p = roundtrip(&runs);
        assert!(p.repeat_commands() >= 1);
        assert!(p.words() < runs.len(), "{} words for {} runs", p.words(), runs.len());
    }

    #[test]
    fn aperiodic_lists_stay_exact() {
        // No structure: every run distinct. Must round-trip exactly and
        // cost at most two words per run.
        let runs: Vec<Run> = (0..100).map(|i| run(6 + i, 1 + (i as u64 % 9))).collect();
        let p = roundtrip(&runs);
        assert!(p.words() <= 2 * runs.len());
    }

    #[test]
    fn packing_is_deterministic() {
        let mut runs = Vec::new();
        for i in 0..200u32 {
            runs.push(run(i % 5, 1 + u64::from(i % 3)));
        }
        let mut merged: Vec<Run> = Vec::new();
        for r in runs {
            match merged.last_mut() {
                Some(l) if l.sym == r.sym => l.len += r.len,
                _ => merged.push(r),
            }
        }
        let a = PackedRuns::pack(&merged);
        let b = PackedRuns::pack(&merged);
        assert_eq!(a, b);
        assert_eq!(a.decode(), b.decode());
    }
}
