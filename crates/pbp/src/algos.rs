//! Quantum-inspired algorithms on the PBP model.
//!
//! The paper positions PBP as supporting "a broad class of algorithms
//! leveraging superposition and entanglement". This module implements the
//! canonical one beyond factoring: **exhaustive Boolean satisfiability**.
//! Each variable is a Hadamard pbit, so entanglement channel `e` carries
//! the assignment whose bits are the bits of `e`; evaluating the formula
//! once evaluates it in *all* `2^n` possible worlds, and non-destructive
//! measurement reads out every satisfying assignment (or counts them —
//! #SAT — with a single `pop`).

use crate::{PbpContext, Re};

/// A CNF formula in DIMACS convention: literal `+k` is variable `k-1`,
/// `-k` its negation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (≤ 16: one entanglement dimension each).
    pub num_vars: u32,
    /// Clauses as non-empty literal lists.
    pub clauses: Vec<Vec<i32>>,
}

impl Cnf {
    /// New formula over `num_vars` variables.
    pub fn new(num_vars: u32) -> Cnf {
        assert!(num_vars >= 1 && num_vars <= 16, "1..=16 variables supported");
        Cnf { num_vars, clauses: Vec::new() }
    }

    /// Add one clause (DIMACS literals, e.g. `&[1, -3]` = `x0 ∨ ¬x2`).
    pub fn clause(&mut self, lits: &[i32]) -> &mut Self {
        assert!(!lits.is_empty(), "empty clause is trivially unsatisfiable");
        for &l in lits {
            let v = l.unsigned_abs() - 1;
            assert!(l != 0 && v < self.num_vars, "literal {l} out of range");
        }
        self.clauses.push(lits.to_vec());
        self
    }

    /// Add pairwise at-most-one constraints over the given variables
    /// (0-based indices).
    pub fn at_most_one(&mut self, vars: &[u32]) -> &mut Self {
        for (i, &a) in vars.iter().enumerate() {
            for &b in &vars[i + 1..] {
                self.clause(&[-(a as i32 + 1), -(b as i32 + 1)]);
            }
        }
        self
    }

    /// Add an at-least-one clause over the given variables.
    pub fn at_least_one(&mut self, vars: &[u32]) -> &mut Self {
        let lits: Vec<i32> = vars.iter().map(|&v| v as i32 + 1).collect();
        self.clause(&lits)
    }

    /// Reference evaluation of the formula on one assignment bitmask.
    pub fn eval(&self, assignment: u64) -> bool {
        self.clauses.iter().all(|cl| {
            cl.iter().any(|&l| {
                let v = l.unsigned_abs() - 1;
                let bit = (assignment >> v) & 1 == 1;
                if l > 0 { bit } else { !bit }
            })
        })
    }
}

impl PbpContext {
    /// Evaluate a CNF over the full superposition: the returned pbit is 1
    /// exactly in the channels whose low `num_vars` bits satisfy the
    /// formula. Requires `universe_ways >= num_vars`.
    pub fn sat_predicate(&mut self, cnf: &Cnf) -> Re {
        assert!(
            self.universe_ways() >= cnf.num_vars,
            "universe too small for {} variables",
            cnf.num_vars
        );
        let vars: Vec<Re> = (0..cnf.num_vars).map(|k| self.hadamard(k)).collect();
        let mut formula = self.constant(true);
        for cl in &cnf.clauses {
            let mut clause = self.constant(false);
            for &l in cl {
                let v = &vars[(l.unsigned_abs() - 1) as usize];
                let lit = if l > 0 { v.clone() } else { self.not(v) };
                clause = self.or(&clause, &lit);
            }
            formula = self.and(&formula, &clause);
        }
        formula
    }

    /// All satisfying assignments, as bitmasks over the variables,
    /// ascending. One evaluation pass, one non-destructive read-out.
    pub fn sat_assignments(&mut self, cnf: &Cnf) -> Vec<u64> {
        let p = self.sat_predicate(cnf);
        let limit = 1u64 << cnf.num_vars;
        self.re_enumerate_ones(&p, limit as usize)
            .into_iter()
            .take_while(|&e| e < limit)
            .collect()
    }

    /// Model count (#SAT) in O(runs) via `pop`: the universe repeats every
    /// assignment `2^(E - n)` times, so divide the population accordingly.
    pub fn sat_count(&mut self, cnf: &Cnf) -> u64 {
        let p = self.sat_predicate(cnf);
        self.re_pop_all(&p) >> (self.universe_ways() - cnf.num_vars)
    }

    /// Satisfiability in O(runs): the paper's ANY reduction.
    pub fn sat_any(&mut self, cnf: &Cnf) -> bool {
        let p = self.sat_predicate(cnf);
        self.re_any(&p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cnf: &Cnf) -> Vec<u64> {
        (0..1u64 << cnf.num_vars).filter(|&a| cnf.eval(a)).collect()
    }

    #[test]
    fn tiny_formulas() {
        let mut ctx = PbpContext::new(8);
        // x0 ∧ ¬x1
        let mut cnf = Cnf::new(2);
        cnf.clause(&[1]).clause(&[-2]);
        assert_eq!(ctx.sat_assignments(&cnf), vec![0b01]);
        assert_eq!(ctx.sat_count(&cnf), 1);
        assert!(ctx.sat_any(&cnf));
    }

    #[test]
    fn unsatisfiable_formula() {
        let mut ctx = PbpContext::new(8);
        let mut cnf = Cnf::new(1);
        cnf.clause(&[1]).clause(&[-1]);
        assert!(ctx.sat_assignments(&cnf).is_empty());
        assert_eq!(ctx.sat_count(&cnf), 0);
        assert!(!ctx.sat_any(&cnf));
    }

    #[test]
    fn xor_chain_counts() {
        // x0 ⊕ x1 as CNF: (x0 ∨ x1) ∧ (¬x0 ∨ ¬x1) — 2 models.
        let mut ctx = PbpContext::new(8);
        let mut cnf = Cnf::new(2);
        cnf.clause(&[1, 2]).clause(&[-1, -2]);
        assert_eq!(ctx.sat_assignments(&cnf), vec![0b01, 0b10]);
        assert_eq!(ctx.sat_count(&cnf), 2);
    }

    #[test]
    fn matches_brute_force_on_3sat_batch() {
        // A handful of fixed 3-SAT instances over 6 variables.
        let instances: Vec<Vec<Vec<i32>>> = vec![
            vec![vec![1, 2, 3], vec![-1, 4, 5], vec![-2, -4, 6], vec![3, -5, -6]],
            vec![vec![1, -2, 3], vec![2, -3, 4], vec![-1, -4, 5], vec![-5, 6, 1]],
            vec![vec![-1, -2, -3], vec![1, 2, -4], vec![3, 4, 5], vec![-5, -6, 2]],
        ];
        for (i, cls) in instances.iter().enumerate() {
            let mut cnf = Cnf::new(6);
            for c in cls {
                cnf.clause(c);
            }
            let mut ctx = PbpContext::new(8);
            let got = ctx.sat_assignments(&cnf);
            assert_eq!(got, brute_force(&cnf), "instance {i}");
            assert_eq!(ctx.sat_count(&cnf), got.len() as u64);
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: vars p*2+h means pigeon p in hole h.
        let mut cnf = Cnf::new(6);
        for p in 0..3u32 {
            cnf.at_least_one(&[p * 2, p * 2 + 1]);
        }
        for h in 0..2u32 {
            cnf.at_most_one(&[h, 2 + h, 4 + h]);
        }
        let mut ctx = PbpContext::new(8);
        assert!(!ctx.sat_any(&cnf));
    }

    #[test]
    fn exactly_one_helpers() {
        let mut cnf = Cnf::new(3);
        cnf.at_least_one(&[0, 1, 2]).at_most_one(&[0, 1, 2]);
        let mut ctx = PbpContext::new(8);
        assert_eq!(ctx.sat_assignments(&cnf), vec![0b001, 0b010, 0b100]);
    }

    #[test]
    fn works_at_16_variables_full_hardware_size() {
        // A chain x0→x1→…→x15 plus x0: exactly one model (all true).
        let mut cnf = Cnf::new(16);
        cnf.clause(&[1]);
        for v in 0..15i32 {
            cnf.clause(&[-(v + 1), v + 2]);
        }
        let mut ctx = PbpContext::new(16);
        assert_eq!(ctx.sat_assignments(&cnf), vec![0xFFFF]);
        assert_eq!(ctx.sat_count(&cnf), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn literal_range_checked() {
        Cnf::new(2).clause(&[3]);
    }
}
