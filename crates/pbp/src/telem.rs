//! Crate-internal telemetry handles for the RE and tree representations.

use tangled_telemetry::{Counter, Histogram};

/// RE-layer gate operations (binary ops through `PbpContext::binop`).
pub static RE_GATES: Counter = Counter::new("pbp.re.gates");
/// Compression ratio of each RE gate result: universe chunks divided by
/// stored runs (higher = better compression).
pub static RE_COMPRESSION: Histogram = Histogram::new("pbp.re.compression");
/// Tree builds from explicit values (`TreeCtx::from_aob` / `from_re`).
pub static TREE_BUILDS: Counter = Counter::new("pbp.tree.builds");
/// Tree binop calls answered from the node memo table.
pub static TREE_MEMO_HITS: Counter = Counter::new("pbp.tree.memo_hits");
