//! Crate-internal telemetry handles for the RE and tree representations.

use tangled_telemetry::{Counter, Histogram};

/// RE-layer gate operations (binary ops through `PbpContext::binop`).
pub static RE_GATES: Counter = Counter::new("pbp.re.gates");
/// Compression ratio of each RE gate result: universe chunks divided by
/// stored runs (higher = better compression).
pub static RE_COMPRESSION: Histogram = Histogram::new("pbp.re.compression");
/// Packed period footprint of each RE gate result, in `u32` command
/// words.
pub static RE_PACKED_WORDS: Histogram = Histogram::new("pbp.re.packed.words");
/// Packed-encoding win of each RE gate result: flat `Vec<Run>` words
/// divided by packed command words (>= 1 means the packed form never
/// loses to the flat-run baseline).
pub static RE_PACKED_RATIO: Histogram = Histogram::new("pbp.re.packed.ratio");
/// `Repeat` commands the `RepeatFinder` emitted across all RE gate
/// results (cross-symbol periodicity factored out of stored periods).
pub static RE_PACKED_REPEATS: Counter = Counter::new("pbp.re.packed.repeats");
/// Tree builds from explicit values (`TreeCtx::from_aob` / `from_re`).
pub static TREE_BUILDS: Counter = Counter::new("pbp.tree.builds");
/// Tree binop calls answered from the node memo table.
pub static TREE_MEMO_HITS: Counter = Counter::new("pbp.tree.memo_hits");
