//! The `pint` (pattern integer) word-level API — the Figure 9 programming
//! model of the software-only PBP prototype.
//!
//! A [`Pint`] is a little-endian vector of pbits. Arithmetic is built from
//! gate operations on the pbits (ripple-carry addition, shift-and-add
//! multiplication, XNOR-tree equality), exactly the decomposition the
//! prototype emitted as gate-level code (and which `gatec` compiles to
//! Tangled/Qat instructions).
//!
//! Measurement is **non-destructive** and returns *all* values in the
//! entangled superposition with their probabilities — the paper's headline
//! advantage over quantum measurement.

use crate::{PbpContext, Re};

/// A superposed machine integer: little-endian pbits.
#[derive(Debug, Clone)]
pub struct Pint {
    bits: Vec<Re>,
}

/// One entry of a non-destructive measurement: a value and its probability
/// numerator (in parts per `2^E`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasuredValue {
    /// The integer value.
    pub value: u64,
    /// Number of entanglement channels carrying this value.
    pub count: u64,
}

impl Pint {
    /// Width in pbits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Borrow pbit `i` (little-endian).
    pub fn bit(&self, i: usize) -> &Re {
        &self.bits[i]
    }

    /// Construct from explicit pbits.
    pub fn from_bits(bits: Vec<Re>) -> Pint {
        assert!(!bits.is_empty(), "a pint needs at least one pbit");
        Pint { bits }
    }

    /// Total runs across all pbits (storage measure).
    pub fn storage_runs(&self) -> usize {
        self.bits.iter().map(|b| b.storage_runs()).sum()
    }
}

impl PbpContext {
    /// `pint_mk(width, value)`: the constant `value` as a `width`-pbit pint.
    pub fn pint_mk(&mut self, width: usize, value: u64) -> Pint {
        let bits = (0..width)
            .map(|i| self.constant((value >> i) & 1 != 0))
            .collect();
        Pint { bits }
    }

    /// `pint_h(width, mask)`: a Hadamard-initialized superposition. Bit `i`
    /// of the pint uses `H(k)` where `k` is the `i`-th set bit of `mask` —
    /// Figure 9's `pint_h(4, 0x0f)` / `pint_h(4, 0xf0)` convention, which
    /// is what keeps `b` and `c` entangled over *disjoint* channel sets.
    pub fn pint_h(&mut self, width: usize, mask: u16) -> Pint {
        let dims: Vec<u32> = (0..16).filter(|k| (mask >> k) & 1 != 0).collect();
        assert_eq!(
            dims.len(),
            width,
            "pint_h mask must have exactly `width` set bits"
        );
        let bits = dims.into_iter().map(|k| self.hadamard(k)).collect();
        Pint { bits }
    }

    /// A Hadamard superposition over the next `width` *unallocated*
    /// dimensions (convenience wrapper over the channel allocator).
    pub fn pint_h_auto(&mut self, width: usize) -> Pint {
        let first = self.alloc_dims(width as u32);
        let bits = (first..first + width as u32).map(|k| self.hadamard(k)).collect();
        Pint { bits }
    }

    /// Bitwise AND of equal-width pints.
    pub fn pint_and(&mut self, a: &Pint, b: &Pint) -> Pint {
        assert_eq!(a.width(), b.width());
        let bits = a.bits.iter().zip(&b.bits).map(|(x, y)| self.and(x, y)).collect();
        Pint { bits }
    }

    /// Bitwise XOR of equal-width pints.
    pub fn pint_xor(&mut self, a: &Pint, b: &Pint) -> Pint {
        assert_eq!(a.width(), b.width());
        let bits = a.bits.iter().zip(&b.bits).map(|(x, y)| self.xor(x, y)).collect();
        Pint { bits }
    }

    /// Bitwise NOT.
    pub fn pint_not(&mut self, a: &Pint) -> Pint {
        let bits = a.bits.iter().map(|x| self.not(x)).collect();
        Pint { bits }
    }

    /// Zero-extend (or truncate) to `width` pbits.
    pub fn pint_resize(&mut self, a: &Pint, width: usize) -> Pint {
        let mut bits = a.bits.clone();
        while bits.len() < width {
            bits.push(self.constant(false));
        }
        bits.truncate(width);
        Pint { bits }
    }

    /// Ripple-carry addition; result is one pbit wider than the wider
    /// operand (no overflow loss).
    pub fn pint_add(&mut self, a: &Pint, b: &Pint) -> Pint {
        let w = a.width().max(b.width());
        let a = self.pint_resize(a, w);
        let b = self.pint_resize(b, w);
        let mut carry = self.constant(false);
        let mut bits = Vec::with_capacity(w + 1);
        for i in 0..w {
            let (x, y) = (&a.bits[i], &b.bits[i]);
            let xy = self.xor(x, y);
            let sum = self.xor(&xy, &carry);
            // carry' = (x & y) | (carry & (x ^ y))
            let and_xy = self.and(x, y);
            let and_cxy = self.and(&carry, &xy);
            carry = self.or(&and_xy, &and_cxy);
            bits.push(sum);
        }
        bits.push(carry);
        Pint { bits }
    }

    /// Shift-and-add multiplication; result width is the sum of the
    /// operand widths (exact product).
    pub fn pint_mul(&mut self, a: &Pint, b: &Pint) -> Pint {
        let wr = a.width() + b.width();
        let mut acc = self.pint_mk(wr, 0);
        for (i, bi) in b.bits.iter().cloned().enumerate() {
            // partial = (a & replicate(b_i)) << i, zero-extended to wr
            let masked: Vec<Re> = a.bits.iter().map(|x| self.and(x, &bi)).collect();
            let mut shifted = vec![self.constant(false); i];
            shifted.extend(masked);
            let partial = self.pint_resize(&Pint { bits: shifted }, wr);
            let sum = self.pint_add(&acc, &partial);
            acc = self.pint_resize(&sum, wr);
        }
        acc
    }

    /// Equality comparison → a single pbit (1 in every channel where the
    /// two values agree). Operands are zero-extended to a common width.
    pub fn pint_eq(&mut self, a: &Pint, b: &Pint) -> Re {
        let w = a.width().max(b.width());
        let a = self.pint_resize(a, w);
        let b = self.pint_resize(b, w);
        let mut acc = self.constant(true);
        for i in 0..w {
            let x = self.xor(&a.bits[i], &b.bits[i]);
            let eq = self.not(&x);
            acc = self.and(&acc, &eq);
        }
        acc
    }

    /// Unsigned less-than → a single pbit.
    pub fn pint_lt(&mut self, a: &Pint, b: &Pint) -> Re {
        let w = a.width().max(b.width());
        let a = self.pint_resize(a, w);
        let b = self.pint_resize(b, w);
        // From msb down: lt = (!ai & bi) | (ai==bi) & lt_lower
        let mut lt = self.constant(false);
        for i in 0..w {
            let (ai, bi) = (&a.bits[i], &b.bits[i]);
            let na = self.not(ai);
            let strictly = self.and(&na, bi);
            let x = self.xor(ai, bi);
            let eq = self.not(&x);
            let keep = self.and(&eq, &lt);
            lt = self.or(&strictly, &keep);
        }
        lt
    }

    /// Two's-complement subtraction `a - b`, truncated to the wider
    /// operand's width (wrapping, like the Tangled `add`/`neg` pair).
    pub fn pint_sub(&mut self, a: &Pint, b: &Pint) -> Pint {
        let w = a.width().max(b.width());
        let b = self.pint_resize(b, w);
        let nb = self.pint_not(&b);
        let one = self.pint_mk(w, 1);
        let nb1 = self.pint_add(&nb, &one);
        let nb1 = self.pint_resize(&nb1, w);
        let sum = self.pint_add(a, &nb1);
        self.pint_resize(&sum, w)
    }

    /// Left shift by a constant amount (widens by `k` pbits).
    pub fn pint_shl(&mut self, a: &Pint, k: usize) -> Pint {
        let mut bits: Vec<Re> = (0..k).map(|_| self.constant(false)).collect();
        bits.extend(a.bits.iter().cloned());
        Pint { bits }
    }

    /// Logical right shift by a constant amount (narrows by `k`, minimum
    /// width 1).
    pub fn pint_shr(&mut self, a: &Pint, k: usize) -> Pint {
        let mut bits: Vec<Re> = a.bits.iter().skip(k).cloned().collect();
        if bits.is_empty() {
            bits.push(self.constant(false));
        }
        Pint { bits }
    }

    /// Inequality → single pbit (`NOT` of [`PbpContext::pint_eq`]).
    pub fn pint_ne(&mut self, a: &Pint, b: &Pint) -> Re {
        let eq = self.pint_eq(a, b);
        self.not(&eq)
    }

    /// The probability that a predicate pbit is 1, as a fraction of the
    /// universe (POP / 2^E).
    pub fn probability(&self, p: &Re) -> f64 {
        self.re_pop_all(p) as f64 / self.channels() as f64
    }

    /// The value of a pint in one specific entanglement channel.
    pub fn pint_value_at(&self, p: &Pint, e: u64) -> u64 {
        p.bits
            .iter()
            .enumerate()
            .map(|(i, b)| (self.re_get(b, e) as u64) << i)
            .sum()
    }

    /// Non-destructive measurement: every distinct value in the entangled
    /// superposition, with its channel count, sorted by value — the
    /// Figure 9 `pint_measure` that "prints 0, 1, 3, 5, 15".
    pub fn pint_measure(&self, p: &Pint) -> Vec<MeasuredValue> {
        let mut counts: std::collections::BTreeMap<u64, u64> = Default::default();
        for e in 0..self.channels() {
            *counts.entry(self.pint_value_at(p, e)).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|(value, count)| MeasuredValue { value, count })
            .collect()
    }

    /// Measurement restricted to channels where a mask pbit is 1 (used to
    /// read out "the answers" without materializing the e*b product —
    /// the §4.2 observation that the result "is really encoded in the
    /// 1-valued entanglement channels of e").
    pub fn pint_measure_where(&self, p: &Pint, mask: &Re) -> Vec<MeasuredValue> {
        let mut counts: std::collections::BTreeMap<u64, u64> = Default::default();
        let mut visit = |e: u64| {
            *counts.entry(self.pint_value_at(p, e)).or_insert(0) += 1;
        };
        if self.re_get(mask, 0) {
            visit(0);
        }
        let mut e = 0u64;
        while let Some(nx) = self.re_next(mask, e) {
            visit(nx);
            e = nx;
        }
        counts
            .into_iter()
            .map(|(value, count)| MeasuredValue { value, count })
            .collect()
    }

    /// Monte-Carlo measurement: sample `n` channels chosen by a caller-
    /// supplied channel source (the paper: "very high-quality random
    /// sampling of entangled superpositions by simply using Tangled
    /// instructions to place a random number in $d"). Unlike quantum
    /// sampling this never collapses anything — and unlike
    /// [`PbpContext::pint_measure`] it is O(n), not O(2^E).
    pub fn pint_measure_sampled(
        &self,
        p: &Pint,
        n: usize,
        mut channel: impl FnMut() -> u64,
    ) -> Vec<MeasuredValue> {
        let mut counts: std::collections::BTreeMap<u64, u64> = Default::default();
        for _ in 0..n {
            let e = channel() & (self.channels() - 1);
            *counts.entry(self.pint_value_at(p, e)).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|(value, count)| MeasuredValue { value, count })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(m: &[MeasuredValue]) -> Vec<u64> {
        m.iter().map(|v| v.value).collect()
    }

    #[test]
    fn constants_measure_to_themselves() {
        let mut ctx = PbpContext::new(8);
        let p = ctx.pint_mk(4, 13);
        let m = ctx.pint_measure(&p);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0], MeasuredValue { value: 13, count: 256 });
    }

    #[test]
    fn hadamard_pint_is_uniform_counter() {
        // pint_h(4, 0x0f) ranges uniformly over 0..16.
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let m = ctx.pint_measure(&b);
        assert_eq!(values(&m), (0..16u64).collect::<Vec<_>>());
        assert!(m.iter().all(|v| v.count == 16)); // 256/16 channels each
    }

    #[test]
    fn disjoint_channel_sets_are_independent() {
        // Figure 9's crucial property: b uses H(0..3), c uses H(4..7), so
        // b*c ranges over ALL pairs, not just squares.
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let c = ctx.pint_h(4, 0xf0);
        for e in 0..256u64 {
            assert_eq!(ctx.pint_value_at(&b, e), e & 0xF);
            assert_eq!(ctx.pint_value_at(&c, e), e >> 4);
        }
    }

    #[test]
    fn same_channels_give_squares() {
        // The paper's counterpoint: "Had b and c used the same entanglement
        // channels, that multiplication would only have computed 4-way
        // entangled squares."
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let c = ctx.pint_h(4, 0x0f);
        let d = ctx.pint_mul(&b, &c);
        let m = ctx.pint_measure(&d);
        let squares: Vec<u64> = (0..16u64).map(|v| v * v).collect();
        let mut expect: Vec<u64> = squares.clone();
        expect.dedup();
        assert_eq!(values(&m), expect);
    }

    #[test]
    fn add_is_exact_on_superpositions() {
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(3, 0b0000_0111);
        let c = ctx.pint_h(3, 0b0011_1000);
        let s = ctx.pint_add(&b, &c);
        for e in 0..256u64 {
            let (x, y) = (e & 7, (e >> 3) & 7);
            assert_eq!(ctx.pint_value_at(&s, e), x + y, "e={e}");
        }
    }

    #[test]
    fn mul_is_exact_on_superpositions() {
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let c = ctx.pint_h(4, 0xf0);
        let d = ctx.pint_mul(&b, &c);
        assert_eq!(d.width(), 8);
        for e in 0..256u64 {
            assert_eq!(ctx.pint_value_at(&d, e), (e & 0xF) * (e >> 4), "e={e}");
        }
    }

    #[test]
    fn eq_and_lt_predicates() {
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let seven = ctx.pint_mk(4, 7);
        let eq = ctx.pint_eq(&b, &seven);
        let lt = ctx.pint_lt(&b, &seven);
        for e in 0..256u64 {
            assert_eq!(ctx.re_get(&eq, e), (e & 0xF) == 7);
            assert_eq!(ctx.re_get(&lt, e), (e & 0xF) < 7);
        }
    }

    #[test]
    fn figure9_word_level_prime_factoring_of_15() {
        // The complete Figure 9 program.
        let mut ctx = PbpContext::new(8);
        let a = ctx.pint_mk(4, 15); //  a = 15
        let b = ctx.pint_h(4, 0x0f); // b = 0..15
        let c = ctx.pint_h(4, 0xf0); // c = 0..15
        let d = ctx.pint_mul(&b, &c); // d = b*c
        let e = ctx.pint_eq(&d, &a); //  e = (d == 15)
        let e_pint = Pint::from_bits(vec![e.clone()]);
        let f = ctx.pint_mul(&e_pint, &b); // zero the non-factors
        let m = ctx.pint_measure(&f);
        // "prints 0, 1, 3, 5, 15"
        assert_eq!(values(&m), vec![0, 1, 3, 5, 15]);
        // And §4.2's shortcut: reading b only where e is 1 gives the
        // factors directly, no final multiply needed.
        let direct = ctx.pint_measure_where(&b, &e);
        assert_eq!(values(&direct), vec![1, 3, 5, 15]);
    }

    #[test]
    fn factoring_221_at_16_way() {
        // The prototype's original problem (§4.1): factor 221 = 13 * 17
        // with two 8-bit operands — 16-way entanglement.
        let mut ctx = PbpContext::new(16);
        let n = ctx.pint_mk(8, 221);
        let b = ctx.pint_h_auto(8);
        let c = ctx.pint_h_auto(8);
        let d = ctx.pint_mul(&b, &c);
        let e = ctx.pint_eq(&d, &n);
        let factors = ctx.pint_measure_where(&b, &e);
        assert_eq!(values(&factors), vec![1, 13, 17, 221]);
    }

    #[test]
    fn measure_where_on_empty_mask() {
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let never = ctx.constant(false);
        assert!(ctx.pint_measure_where(&b, &never).is_empty());
    }

    #[test]
    fn probabilities_sum_to_universe() {
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let two = ctx.pint_mk(4, 2);
        let p = ctx.pint_mul(&b, &two);
        let m = ctx.pint_measure(&p);
        let total: u64 = m.iter().map(|v| v.count).sum();
        assert_eq!(total, ctx.channels());
    }

    #[test]
    fn figure1_nonuniform_distribution() {
        // The Figure 1 example: vectors {0,0,1,0} and {0,0,1,1} encode
        // values {0,0,3,2} — 50% 0, 25% 2, 25% 3.
        let mut ctx = PbpContext::new(6); // smallest universe; use dims 0,1
        // Build the two pbits explicitly from their truth tables on the
        // 4 channels, repeated across the universe (channels mod 4).
        let h0 = ctx.hadamard(0);
        let h1 = ctx.hadamard(1);
        // lo = {0,0,1,0}: 1 only where (e%4)==2 → h1 & !h0
        let nh0 = ctx.not(&h0);
        let lo = ctx.and(&h1, &nh0);
        // hi = {0,0,1,1}: 1 where e%4 >= 2 → h1
        let hi = h1.clone();
        let p = Pint::from_bits(vec![lo, hi]);
        let m = ctx.pint_measure(&p);
        assert_eq!(
            m,
            vec![
                MeasuredValue { value: 0, count: 32 }, // 50%
                MeasuredValue { value: 2, count: 16 }, // 25%
                MeasuredValue { value: 3, count: 16 }, // 25%
            ]
        );
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn sub_is_exact_wrapping() {
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let c = ctx.pint_h(4, 0xf0);
        let d = ctx.pint_sub(&b, &c);
        for e in 0..256u64 {
            let (x, y) = (e & 0xF, e >> 4);
            assert_eq!(ctx.pint_value_at(&d, e), x.wrapping_sub(y) & 0xF, "e={e}");
        }
    }

    #[test]
    fn shifts() {
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let l = ctx.pint_shl(&b, 2);
        assert_eq!(l.width(), 6);
        let r = ctx.pint_shr(&b, 2);
        assert_eq!(r.width(), 2);
        for e in 0..256u64 {
            let x = e & 0xF;
            assert_eq!(ctx.pint_value_at(&l, e), x << 2);
            assert_eq!(ctx.pint_value_at(&r, e), x >> 2);
        }
        // Shifting everything out leaves a zero pbit, not an empty pint.
        let all_out = ctx.pint_shr(&b, 10);
        assert_eq!(all_out.width(), 1);
        assert_eq!(ctx.pint_measure(&all_out)[0].value, 0);
    }

    #[test]
    fn ne_and_probability() {
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let five = ctx.pint_mk(4, 5);
        let eq = ctx.pint_eq(&b, &five);
        let ne = ctx.pint_ne(&b, &five);
        assert!((ctx.probability(&eq) - 1.0 / 16.0).abs() < 1e-12);
        assert!((ctx.probability(&ne) - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_measurement_hits_only_real_values() {
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let three = ctx.pint_mk(2, 3);
        let p = ctx.pint_mul(&b, &three);
        // A deterministic "random" channel walk.
        let mut st = 12345u64;
        let samples = ctx.pint_measure_sampled(&p, 500, || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            st >> 32
        });
        let total: u64 = samples.iter().map(|v| v.count).sum();
        assert_eq!(total, 500);
        for v in &samples {
            assert_eq!(v.value % 3, 0, "sampled impossible value {}", v.value);
            assert!(v.value <= 45);
        }
    }

    #[test]
    fn sub_then_add_roundtrips() {
        let mut ctx = PbpContext::new(8);
        let b = ctx.pint_h(4, 0x0f);
        let k = ctx.pint_mk(4, 9);
        let d = ctx.pint_sub(&b, &k);
        let s = ctx.pint_add(&d, &k);
        let s4 = ctx.pint_resize(&s, 4);
        for e in 0..256u64 {
            assert_eq!(ctx.pint_value_at(&s4, e), e & 0xF);
        }
    }
}
