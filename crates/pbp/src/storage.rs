//! `SparseReFile` — a Qat register file of run-length-compressed pbits.
//!
//! This is the §3.3 scaling story moved *inside* the coprocessor: registers
//! are [`Re`] symbols over a shared [`PbpContext`], and every Table 3 gate
//! executes through the RE rewriting kernels (`O(runs)` per gate) instead
//! of the `2^WAYS`-bit word loops. Structured states — the constant bank,
//! Hadamard initializers, and anything a gate DAG builds from them — keep
//! short packed periods, so the backend supports `ways` all the way to
//! [`SparseReFile::MAX_WAYS`] (32) without ever allocating a
//! multi-megabit vector, and down to 1 way on a padding-masked
//! single-chunk store.
//!
//! The measurement family (`meas` / `next` / `pop`) walks runs directly,
//! which is what keeps the hot path materialization-free;
//! [`pbp_aob::storage::AobStorage::read`] is the only method that expands a
//! register to an explicit [`Aob`], and it is counted both per instance
//! (`materializations`) and in the `qat.backend.sparse_re.materialize`
//! telemetry counter so tests and metrics can prove the gate loop never
//! took it.

use std::cell::Cell;

use pbp_aob::storage::{AobStorage, ConstKind, PackedStats, StorageBackend, WriteDelta};
use pbp_aob::{Aob, ChunkStore, GateOp, InternStats, WaysError};
use tangled_telemetry::Counter;

use crate::{PbpContext, Re};

/// Full-vector expansions performed by the sparse backend (attributed to
/// the Qat backend namespace; see the module docs).
static MATERIALIZE: Counter = Counter::new("qat.backend.sparse_re.materialize");

/// Register file storing every Qat register as an RE-compressed symbol.
#[derive(Debug, Clone)]
pub struct SparseReFile {
    ctx: PbpContext,
    regs: Vec<Re>,
    /// `read()` calls — full `2^ways`-bit expansions — since the last
    /// `reset_stats`. `Cell` because architectural reads take `&self`.
    materializations: Cell<u64>,
}

impl SparseReFile {
    /// Smallest supported entanglement degree. Sub-chunk universes
    /// (`ways <` [`crate::CHUNK_WAYS`]) run on a padding-masked
    /// single-chunk store, so the floor is the PBP context's own.
    pub const MIN_WAYS: u32 = crate::MIN_UNIVERSE_WAYS;

    /// Largest supported entanglement degree. The packed-RLE periods keep
    /// structured states small well past the explicit backends'
    /// [`pbp_aob::HW_MAX_WAYS`]; 32 ways is where the §3.3 factoring demo
    /// is pinned by the conformance suite.
    pub const MAX_WAYS: u32 = 32;

    /// All registers zero, or preloaded with the §5 constant bank; a
    /// typed [`WaysError`] outside `MIN_WAYS..=MAX_WAYS`.
    pub fn try_new(ways: u32, constant_bank: bool) -> Result<Self, WaysError> {
        Self::try_new_warm(ways, constant_bank, None)
    }

    /// Like [`SparseReFile::try_new`], but adopting a registered warm
    /// snapshot for the context's sub-chunk symbol degree (snapshots of
    /// other degrees stay cold — the attach is degree-checked).
    pub fn try_new_warm(
        ways: u32,
        constant_bank: bool,
        warm: Option<pbp_aob::WarmStoreId>,
    ) -> Result<Self, WaysError> {
        WaysError::check(ways, Self::MIN_WAYS, Self::MAX_WAYS)?;
        let mut ctx = PbpContext::try_new_warm(ways, warm)?;
        let zero = ctx.constant(false);
        let mut regs = vec![zero; pbp_aob::storage::REG_COUNT];
        if constant_bank {
            regs[1] = ctx.constant(true);
            for k in 0..ways {
                regs[(2 + k) as usize] = ctx.hadamard(k);
            }
        }
        Ok(SparseReFile { ctx, regs, materializations: Cell::new(0) })
    }

    /// Panicking convenience wrapper around [`SparseReFile::try_new`].
    pub fn new(ways: u32, constant_bank: bool) -> Self {
        Self::try_new(ways, constant_bank)
            .unwrap_or_else(|e| panic!("sparse-re backend: {e}"))
    }

    /// Panicking convenience wrapper around [`SparseReFile::try_new_warm`].
    pub fn warmed(ways: u32, constant_bank: bool, warm: Option<pbp_aob::WarmStoreId>) -> Self {
        Self::try_new_warm(ways, constant_bank, warm)
            .unwrap_or_else(|e| panic!("sparse-re backend: {e}"))
    }

    /// The RE symbol currently held by register `r` (no materialization).
    pub fn re(&self, r: usize) -> &Re {
        &self.regs[r]
    }

    /// The context the register symbols live in.
    pub fn context(&self) -> &PbpContext {
        &self.ctx
    }

    fn delta(&self, old: &Re, new: &Re, meter: bool) -> WriteDelta {
        if !meter {
            return WriteDelta::default();
        }
        // O(runs): toggles via an XOR symbol, net delta via populations.
        // The XOR needs `&mut ctx`, but metering must not mutate shared
        // state observed by callers, so work on a context clone — metering
        // is opt-in and off on every hot path.
        let mut ctx = self.ctx.clone();
        let x = ctx.xor(old, new);
        WriteDelta {
            toggles: ctx.re_pop_all(&x),
            pop_delta: ctx.re_pop_all(new) as i64 - ctx.re_pop_all(old) as i64,
            writes: 1,
        }
    }

    fn commit(&mut self, r: usize, v: Re, meter: bool) -> WriteDelta {
        let d = self.delta(&self.regs[r], &v, meter);
        self.regs[r] = v;
        d
    }
}

impl AobStorage for SparseReFile {
    fn backend(&self) -> StorageBackend {
        StorageBackend::SparseRe
    }

    fn ways(&self) -> u32 {
        self.ctx.universe_ways()
    }

    fn read(&self, r: usize) -> Aob {
        self.materializations.set(self.materializations.get() + 1);
        MATERIALIZE.inc();
        self.ctx.to_aob(&self.regs[r])
    }

    fn set(&mut self, r: usize, v: &Aob) {
        self.regs[r] = self.ctx.from_aob(v);
    }

    fn write_const(&mut self, r: usize, kind: ConstKind, meter: bool) -> WriteDelta {
        let v = match kind {
            ConstKind::Zeros => self.ctx.constant(false),
            ConstKind::Ones => self.ctx.constant(true),
            // hadamard() itself yields all-zeros for k >= ways.
            ConstKind::Hadamard(k) => self.ctx.hadamard(k),
        };
        self.commit(r, v, meter)
    }

    fn gate_not(&mut self, r: usize, meter: bool) -> WriteDelta {
        let v = self.ctx.not(&self.regs[r]);
        self.commit(r, v, meter)
    }

    fn gate_bin(&mut self, op: GateOp, a: usize, b: usize, c: usize, meter: bool) -> WriteDelta {
        let (x, y) = (&self.regs[b], &self.regs[c]);
        let v = match op {
            GateOp::And => self.ctx.and(x, y),
            GateOp::Or => self.ctx.or(x, y),
            GateOp::Xor => self.ctx.xor(x, y),
        };
        self.commit(a, v, meter)
    }

    fn gate_ccnot(&mut self, a: usize, b: usize, c: usize, meter: bool) -> WriteDelta {
        let bc = self.ctx.and(&self.regs[b], &self.regs[c]);
        let v = self.ctx.xor(&self.regs[a], &bc);
        self.commit(a, v, meter)
    }

    fn gate_swap(&mut self, a: usize, b: usize, meter: bool) -> WriteDelta {
        let mut d = WriteDelta::default();
        if meter {
            d.merge(self.delta(&self.regs[a], &self.regs[b], true));
            d.merge(self.delta(&self.regs[b], &self.regs[a], true));
        }
        self.regs.swap(a, b);
        d
    }

    fn gate_cswap(&mut self, a: usize, b: usize, c: usize, meter: bool) -> WriteDelta {
        let sel = self.regs[c].clone();
        let (va, vb) = (self.regs[a].clone(), self.regs[b].clone());
        let na = self.ctx.mux(&sel, &vb, &va);
        let nb = self.ctx.mux(&sel, &va, &vb);
        let mut d = self.commit(a, na, meter);
        d.merge(self.commit(b, nb, meter));
        d
    }

    fn meas(&self, r: usize, e: u64) -> bool {
        self.ctx.re_get(&self.regs[r], e)
    }

    fn next(&self, r: usize, d: u64) -> Option<u64> {
        self.ctx.re_next(&self.regs[r], d)
    }

    fn pop_after(&self, r: usize, d: u64) -> u64 {
        self.ctx.re_pop_after(&self.regs[r], d)
    }

    fn intern_stats(&self) -> Option<InternStats> {
        Some(self.ctx.intern_stats())
    }

    fn chunk_store(&self) -> Option<&ChunkStore> {
        None
    }

    fn packed_stats(&self) -> Option<PackedStats> {
        let mut s = PackedStats::default();
        for re in &self.regs {
            s.flat_words += re.flat_run_words() as u64;
            s.packed_words += re.packed_words() as u64;
            s.repeats += re.repeat_commands() as u64;
        }
        Some(s)
    }

    fn materializations(&self) -> u64 {
        self.materializations.get()
    }

    fn reset_stats(&mut self) {
        self.materializations.set(0);
    }

    fn clone_box(&self) -> Box<dyn AobStorage> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbp_aob::storage::EagerFile;

    /// Exercise every gate once, in a fixed order, on the given file.
    fn drive(f: &mut dyn AobStorage) {
        f.write_const(0, ConstKind::Hadamard(0), false);
        f.write_const(1, ConstKind::Hadamard(3), false);
        f.write_const(2, ConstKind::Hadamard(7), false);
        f.write_const(3, ConstKind::Ones, false);
        f.gate_bin(GateOp::And, 4, 0, 1, false);
        f.gate_bin(GateOp::Or, 5, 4, 2, false);
        f.gate_bin(GateOp::Xor, 6, 5, 0, false);
        f.gate_not(6, false);
        f.gate_bin(GateOp::Xor, 4, 4, 5, false); // cnot @4,@5
        f.gate_bin(GateOp::Xor, 4, 4, 4, false); // cnot @4,@4: clears
        f.gate_ccnot(5, 6, 0, false);
        f.gate_ccnot(5, 5, 5, false); // fully aliased
        f.gate_swap(4, 5, false);
        f.gate_cswap(5, 6, 1, false);
        f.gate_cswap(2, 2, 0, false); // aliased pair
        f.write_const(3, ConstKind::Zeros, false);
        f.write_const(3, ConstKind::Hadamard(200), false); // out of range: zeros
    }

    #[test]
    fn sparse_re_matches_eager_at_ways_8() {
        let mut eager = EagerFile::new(8, false);
        let mut sparse = SparseReFile::new(8, false);
        drive(&mut eager);
        drive(&mut sparse);
        for r in 0..pbp_aob::storage::REG_COUNT {
            assert_eq!(eager.read(r), sparse.read(r), "@{r}");
        }
        // Measurement family agrees without materializing.
        sparse.reset_stats();
        for r in 0..8 {
            for e in [0u64, 1, 37, 255] {
                assert_eq!(eager.meas(r, e), sparse.meas(r, e), "@{r} meas {e}");
                assert_eq!(eager.next(r, e), sparse.next(r, e), "@{r} next {e}");
                assert_eq!(eager.pop_after(r, e), sparse.pop_after(r, e), "@{r} pop {e}");
            }
        }
        assert_eq!(sparse.materializations(), 0);
    }

    #[test]
    fn metering_matches_eager_at_ways_8() {
        let mut eager = EagerFile::new(8, false);
        let mut sparse = SparseReFile::new(8, false);
        for f in [&mut eager as &mut dyn AobStorage, &mut sparse] {
            let d1 = f.write_const(0, ConstKind::Ones, true);
            assert_eq!(d1, WriteDelta { toggles: 256, pop_delta: 256, writes: 1 });
            let d2 = f.gate_not(0, true);
            assert_eq!(d2, WriteDelta { toggles: 256, pop_delta: -256, writes: 1 });
        }
    }

    #[test]
    fn sub_chunk_ways_match_eager() {
        // ways < CHUNK_WAYS runs on the padding-masked single-chunk
        // store; the full gate sweep must agree with the eager oracle and
        // no padding bit may leak into reads or measurements.
        for ways in [1u32, 3, 5] {
            let mut eager = EagerFile::new(ways, true);
            let mut sparse = SparseReFile::new(ways, true);
            drive(&mut eager);
            drive(&mut sparse);
            for r in 0..pbp_aob::storage::REG_COUNT {
                assert_eq!(eager.read(r), sparse.read(r), "ways {ways} @{r}");
            }
            sparse.reset_stats();
            let n = 1u64 << ways;
            for r in 0..8 {
                for e in 0..n {
                    assert_eq!(eager.meas(r, e), sparse.meas(r, e), "ways {ways} @{r} meas {e}");
                    assert_eq!(eager.next(r, e), sparse.next(r, e), "ways {ways} @{r} next {e}");
                    assert_eq!(
                        eager.pop_after(r, e),
                        sparse.pop_after(r, e),
                        "ways {ways} @{r} pop {e}"
                    );
                }
            }
            assert_eq!(sparse.materializations(), 0);
        }
    }

    #[test]
    fn out_of_range_ways_is_a_typed_error() {
        assert_eq!(
            SparseReFile::try_new(0, false).unwrap_err(),
            WaysError { ways: 0, min: SparseReFile::MIN_WAYS, max: SparseReFile::MAX_WAYS }
        );
        assert_eq!(
            SparseReFile::try_new(33, true).unwrap_err(),
            WaysError { ways: 33, min: 1, max: 32 }
        );
        assert!(SparseReFile::try_new(32, true).is_ok());
    }

    #[test]
    #[should_panic(expected = "ways 40 outside supported range")]
    fn out_of_range_ways_panics_through_new() {
        SparseReFile::new(40, false);
    }

    #[test]
    fn ways_32_structured_states_stay_compressed() {
        let mut f = SparseReFile::new(32, true); // constant bank preloaded
        f.gate_bin(GateOp::And, 100, 2 + 5, 2 + 31, false); // H(5) & H(31)
        f.gate_bin(GateOp::Xor, 101, 100, 2 + 30, false);
        f.gate_ccnot(101, 100, 2 + 0, false);
        f.gate_not(101, false);

        let pop = f.pop_after(100, 0);
        assert_eq!(pop + f.meas(100, 0) as u64, 1u64 << 30, "quarter of 2^32 ones");
        assert!(!f.meas(100, (1 << 31) - 1));
        assert!(f.meas(100, (1u64 << 31) | (1 << 5)));
        assert_eq!(f.next(100, 0), Some((1u64 << 31) | (1 << 5)));

        // Nothing materialized, every register footprint is tiny relative
        // to the 2^32-bit universe, and the packed stats surface is live.
        assert_eq!(f.materializations(), 0);
        for r in [100usize, 101] {
            assert!(f.re(r).storage_runs() < 64, "@{r} runs {}", f.re(r).storage_runs());
        }
        let stats = f.packed_stats().unwrap();
        assert!(stats.packed_words > 0);
        assert!(stats.ratio() >= 1.0, "packing must not lose to flat runs");
    }

    #[test]
    fn ways_20_structured_states_stay_compressed() {
        let mut f = SparseReFile::new(20, true); // constant bank preloaded
        // Work over the bank without touching reserved registers.
        f.gate_bin(GateOp::And, 100, 2 + 5, 2 + 19, false); // H(5) & H(19)
        f.gate_bin(GateOp::Xor, 101, 100, 2 + 18, false);
        f.gate_ccnot(101, 100, 2 + 0, false);
        f.gate_not(101, false);

        // Analytic spot checks: H(19) & H(5) has a 1 exactly where both
        // bits of the channel index are set.
        let pop = f.pop_after(100, 0);
        assert_eq!(pop + f.meas(100, 0) as u64, 1u64 << 18, "quarter of 2^20 ones");
        assert!(!f.meas(100, (1 << 19) - 1)); // bit 19 clear
        assert!(f.meas(100, (1 << 19) | (1 << 5)));
        assert_eq!(f.next(100, 0), Some((1 << 19) | (1 << 5)));

        // The whole computation stayed in RE form: nothing materialized,
        // and every register's period is tiny compared to 2^20 bits.
        assert_eq!(f.materializations(), 0);
        for r in [100usize, 101] {
            assert!(f.re(r).storage_runs() < 64, "@{r} runs {}", f.re(r).storage_runs());
        }
    }
}
