//! Nested pattern representation — the paper's §5 future work.
//!
//! "The PBP model does not suggest representing higher degrees of entangled
//! superposition using AoB, but instead using regular expressions
//! compressing patterns in which AoB representations are treated as
//! individual symbols. It remains to be seen if the manipulation of regular
//! patterns of AoB blocks will effectively scale…"
//!
//! This module answers that question for one natural realization: a pbit
//! over `2^E` channels is a **perfect binary tree** of height `E − 6` whose
//! leaves are interned chunk symbols ([`crate::Sym`] — ids into a shared
//! [`pbp_aob::ChunkStore`], the same store type that backs the Qat register
//! file), with *hash-consing* (identical subtrees share one node) and
//! *memoized* gate operations. Any value whose structure repeats —
//! Hadamards, their combinations, sparse predicates — collapses to
//! `O(E)`–`O(polylog)` distinct nodes, and every gate op runs in time
//! proportional to the number of distinct node pairs, never `2^E`.
//!
//! Unlike the flat [`Re`] run-length form, this representation
//! has no pathological operand pairs: `H(6) AND H(39)` at `E = 40` — which
//! overflows the single-level encoding — is a handful of shared nodes here
//! (demonstrated in the tests). Per-node population counts make `pop` O(1)
//! after construction and `next` a single root-to-leaf descent.
//!
//! Malformed operands (trees over different universes, or foreign node ids
//! whose heights disagree) surface as a typed [`TreeError`] instead of a
//! panic, so a bad gate program degrades gracefully.

use crate::{BinOp, PbpContext, Re, Sym};
use pbp_aob::{Aob, ChunkStore, InternStats};
use std::collections::HashMap;
use std::fmt;

/// Node id in a [`TreeCtx`] arena.
pub type TId = u32;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    /// One interned 64-bit chunk symbol (level 0).
    Leaf(Sym),
    /// Two children of the next level down (lo = lower channel half).
    Branch(TId, TId),
}

/// Structural error from a nested-tree gate operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeError {
    /// The operands cover different universes (`2^ways` channel counts).
    UniverseMismatch {
        /// Entanglement degree of the left operand.
        a_ways: u32,
        /// Entanglement degree of the right operand.
        b_ways: u32,
    },
    /// The operand trees have different heights — the structural
    /// inconsistency that arises when a [`PTree`] from one context is fed
    /// to another whose arena assigns its node ids different shapes.
    HeightMismatch,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UniverseMismatch { a_ways, b_ways } => {
                write!(f, "operands cover different universes: {a_ways}-way vs {b_ways}-way")
            }
            TreeError::HeightMismatch => write!(f, "operand trees have different heights"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A pbit in nested-tree form: a root node plus its level (the tree covers
/// `2^(level+6)` channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PTree {
    root: TId,
    level: u32,
}

impl PTree {
    /// Entanglement degree covered by this tree.
    pub fn ways(&self) -> u32 {
        self.level + crate::CHUNK_WAYS
    }
}

/// Arena + memo tables for nested-pattern values.
#[derive(Debug)]
pub struct TreeCtx {
    nodes: Vec<Node>,
    intern: HashMap<Node, TId>,
    /// Per-node population count (ones under this subtree).
    pops: Vec<u64>,
    /// Hash-consed leaf chunks + memoized leaf gate kernels.
    store: ChunkStore,
    bin_memo: HashMap<(BinOp, TId, TId), TId>,
    not_memo: HashMap<TId, TId>,
}

impl Default for TreeCtx {
    fn default() -> Self {
        TreeCtx {
            nodes: Vec::new(),
            intern: HashMap::new(),
            pops: Vec::new(),
            store: ChunkStore::new(crate::CHUNK_WAYS),
            bin_memo: HashMap::new(),
            not_memo: HashMap::new(),
        }
    }
}

impl TreeCtx {
    /// Fresh context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nodes allocated — the storage measure.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cache counters of the backing chunk store.
    pub fn intern_stats(&self) -> InternStats {
        self.store.stats()
    }

    fn intern_node(&mut self, n: Node) -> TId {
        if let Some(&id) = self.intern.get(&n) {
            return id;
        }
        let id = self.nodes.len() as TId;
        let pop = match n {
            Node::Leaf(s) => self.pattern(s).count_ones() as u64,
            Node::Branch(lo, hi) => self.pops[lo as usize] + self.pops[hi as usize],
        };
        self.nodes.push(n);
        self.pops.push(pop);
        self.intern.insert(n, id);
        id
    }

    /// The 64-bit word behind a leaf symbol.
    #[inline]
    fn pattern(&self, s: Sym) -> u64 {
        self.store.aob(s).words()[0]
    }

    fn leaf(&mut self, w: u64) -> TId {
        let s = self.store.intern_word(w);
        self.intern_node(Node::Leaf(s))
    }

    fn leaf_sym(&mut self, s: Sym) -> TId {
        self.intern_node(Node::Leaf(s))
    }

    fn branch(&mut self, lo: TId, hi: TId) -> TId {
        self.intern_node(Node::Branch(lo, hi))
    }

    /// A uniform subtree (all chunks equal) at the given level.
    fn uniform(&mut self, w: u64, level: u32) -> TId {
        let mut id = self.leaf(w);
        for _ in 0..level {
            id = self.branch(id, id);
        }
        id
    }

    /// The constant pbit over `2^ways` channels.
    pub fn constant(&mut self, ways: u32, bit: bool) -> PTree {
        assert!(ways >= crate::CHUNK_WAYS && ways <= 63, "ways out of range");
        let level = ways - crate::CHUNK_WAYS;
        PTree { root: self.uniform(if bit { u64::MAX } else { 0 }, level), level }
    }

    /// The Hadamard pattern `H(k)` over `2^ways` channels: `O(ways)` nodes.
    pub fn hadamard(&mut self, ways: u32, k: u32) -> PTree {
        assert!(ways >= crate::CHUNK_WAYS && ways <= 63);
        let level = ways - crate::CHUNK_WAYS;
        if k >= ways {
            return self.constant(ways, false);
        }
        if k < crate::CHUNK_WAYS {
            return PTree {
                root: self.uniform(pbp_aob::hadamard::LANE[k as usize], level),
                level,
            };
        }
        // Below the split level the subtree is uniform 0 (lo) / 1 (hi);
        // above it, both halves repeat the same structure.
        let split = k - crate::CHUNK_WAYS; // level whose children differ
        let lo = self.uniform(0, split);
        let hi = self.uniform(u64::MAX, split);
        let mut id = self.branch(lo, hi);
        for _ in (split + 1)..level {
            id = self.branch(id, id);
        }
        PTree { root: id, level }
    }

    /// Import an explicit AoB value.
    pub fn from_aob(&mut self, a: &Aob) -> PTree {
        crate::telem::TREE_BUILDS.inc();
        let level = a.ways().saturating_sub(crate::CHUNK_WAYS);
        assert!(a.ways() >= crate::CHUNK_WAYS, "tree form needs at least one chunk");
        let mut layer: Vec<TId> = a.words().iter().map(|&w| self.leaf(w)).collect();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| self.branch(pair[0], pair[1]))
                .collect();
        }
        PTree { root: layer[0], level }
    }

    /// Export to an explicit AoB value (small universes only).
    pub fn to_aob(&self, t: &PTree) -> Aob {
        let ways = t.ways();
        let mut v = Aob::zeros(ways);
        let mut idx = 0usize;
        self.fill_words(t.root, v.words_mut(), &mut idx);
        v
    }

    fn fill_words(&self, id: TId, out: &mut [u64], idx: &mut usize) {
        match self.nodes[id as usize] {
            Node::Leaf(s) => {
                out[*idx] = self.pattern(s);
                *idx += 1;
            }
            Node::Branch(lo, hi) => {
                self.fill_words(lo, out, idx);
                self.fill_words(hi, out, idx);
            }
        }
    }

    fn binop(&mut self, op: BinOp, a: TId, b: TId) -> Result<TId, TreeError> {
        if let Some(&r) = self.bin_memo.get(&(op, a, b)) {
            crate::telem::TREE_MEMO_HITS.inc();
            return Ok(r);
        }
        let r = match (self.nodes[a as usize], self.nodes[b as usize]) {
            (Node::Leaf(x), Node::Leaf(y)) => {
                let s = self.store.binop(op, x, y);
                self.leaf_sym(s)
            }
            (Node::Branch(al, ah), Node::Branch(bl, bh)) => {
                let lo = self.binop(op, al, bl)?;
                let hi = self.binop(op, ah, bh)?;
                self.branch(lo, hi)
            }
            _ => return Err(TreeError::HeightMismatch),
        };
        self.bin_memo.insert((op, a, b), r);
        Ok(r)
    }

    fn check(a: &PTree, b: &PTree) -> Result<(), TreeError> {
        if a.level == b.level {
            Ok(())
        } else {
            Err(TreeError::UniverseMismatch { a_ways: a.ways(), b_ways: b.ways() })
        }
    }

    /// Channel-wise AND.
    pub fn and(&mut self, a: &PTree, b: &PTree) -> Result<PTree, TreeError> {
        Self::check(a, b)?;
        Ok(PTree { root: self.binop(BinOp::And, a.root, b.root)?, level: a.level })
    }

    /// Channel-wise OR.
    pub fn or(&mut self, a: &PTree, b: &PTree) -> Result<PTree, TreeError> {
        Self::check(a, b)?;
        Ok(PTree { root: self.binop(BinOp::Or, a.root, b.root)?, level: a.level })
    }

    /// Channel-wise XOR.
    pub fn xor(&mut self, a: &PTree, b: &PTree) -> Result<PTree, TreeError> {
        Self::check(a, b)?;
        Ok(PTree { root: self.binop(BinOp::Xor, a.root, b.root)?, level: a.level })
    }

    /// Channel-wise NOT (structurally infallible).
    pub fn not(&mut self, a: &PTree) -> PTree {
        PTree { root: self.not_rec(a.root), level: a.level }
    }

    fn not_rec(&mut self, id: TId) -> TId {
        if let Some(&r) = self.not_memo.get(&id) {
            return r;
        }
        let r = match self.nodes[id as usize] {
            Node::Leaf(s) => {
                let n = self.store.not(s);
                self.leaf_sym(n)
            }
            Node::Branch(lo, hi) => {
                let l = self.not_rec(lo);
                let h = self.not_rec(hi);
                self.branch(l, h)
            }
        };
        self.not_memo.insert(id, r);
        r
    }

    // ------------------------------------------------------------------
    // Measurement (non-destructive, sublinear)
    // ------------------------------------------------------------------

    /// Total ones — O(1): the root's cached population.
    pub fn pop_all(&self, t: &PTree) -> u64 {
        self.pops[t.root as usize]
    }

    /// ANY / ALL in O(1) via the population cache.
    pub fn any(&self, t: &PTree) -> bool {
        self.pop_all(t) != 0
    }

    /// ALL reduction.
    pub fn all(&self, t: &PTree) -> bool {
        self.pop_all(t) == 1u64 << t.ways()
    }

    /// `meas`: one root-to-leaf descent.
    pub fn get(&self, t: &PTree, e: u64) -> bool {
        let e = e & ((1u64 << t.ways()) - 1);
        let mut id = t.root;
        let mut level = t.level;
        while let Node::Branch(lo, hi) = self.nodes[id as usize] {
            level -= 1;
            let half = 1u64 << (level + crate::CHUNK_WAYS);
            id = if e & half != 0 { hi } else { lo };
        }
        let Node::Leaf(s) = self.nodes[id as usize] else { unreachable!() };
        (self.pattern(s) >> (e % crate::CHUNK_BITS)) & 1 != 0
    }

    /// `next`: lowest 1-channel strictly above `d`, `None` if no such
    /// channel exists — a single descent guided by subtree populations,
    /// O(height).
    pub fn next(&self, t: &PTree, d: u64) -> Option<u64> {
        let n = 1u64 << t.ways();
        let start = d.saturating_add(1);
        if start >= n {
            return None;
        }
        self.next_rec(t.root, t.level, 0, start)
    }

    fn next_rec(&self, id: TId, level: u32, base: u64, start: u64) -> Option<u64> {
        if self.pops[id as usize] == 0 {
            return None;
        }
        let size = 1u64 << (level + crate::CHUNK_WAYS);
        if start >= base + size {
            return None;
        }
        match self.nodes[id as usize] {
            Node::Leaf(s) => {
                let w = self.pattern(s);
                let from = start.saturating_sub(base).min(63);
                let masked = if start <= base { w } else { w & (u64::MAX << from) };
                (masked != 0).then(|| base + masked.trailing_zeros() as u64)
            }
            Node::Branch(lo, hi) => {
                let half = size / 2;
                self.next_rec(lo, level - 1, base, start)
                    .or_else(|| self.next_rec(hi, level - 1, base + half, start))
            }
        }
    }

    /// Convert a flat RE value into tree form (via channels; test helper
    /// for cross-representation checks on small universes).
    pub fn from_re(&mut self, ctx: &PbpContext, re: &Re) -> PTree {
        self.from_aob(&ctx.to_aob(re))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_hadamards_are_tiny() {
        let mut t = TreeCtx::new();
        let z = t.constant(40, false);
        let o = t.constant(40, true);
        assert!(!t.any(&z));
        assert!(t.all(&o));
        // 2^40 channels in a few dozen shared nodes.
        for k in 0..40 {
            let h = t.hadamard(40, k);
            assert_eq!(t.pop_all(&h), 1u64 << 39, "k={k}");
        }
        assert!(t.node_count() < 1000, "{} nodes for 40 Hadamards at E=40", t.node_count());
    }

    #[test]
    fn matches_aob_semantics() {
        let mut t = TreeCtx::new();
        for ways in [6u32, 8, 10] {
            for k in 0..ways {
                let h = t.hadamard(ways, k);
                assert_eq!(t.to_aob(&h), Aob::hadamard(ways, k), "ways={ways} k={k}");
            }
        }
        let a = t.hadamard(9, 3);
        let b = t.hadamard(9, 8);
        let (aa, ab) = (Aob::hadamard(9, 3), Aob::hadamard(9, 8));
        let and = t.and(&a, &b).unwrap();
        assert_eq!(t.to_aob(&and), Aob::and_of(&aa, &ab));
        let or = t.or(&a, &b).unwrap();
        assert_eq!(t.to_aob(&or), Aob::or_of(&aa, &ab));
        let xor = t.xor(&a, &b).unwrap();
        assert_eq!(t.to_aob(&xor), Aob::xor_of(&aa, &ab));
        let not = t.not(&a);
        assert_eq!(t.to_aob(&not), aa.not_of());
    }

    #[test]
    fn measurement_matches_aob() {
        let mut t = TreeCtx::new();
        let a = t.hadamard(9, 2);
        let b = t.hadamard(9, 7);
        let v = t.and(&a, &b).unwrap();
        let oracle = Aob::and_of(&Aob::hadamard(9, 2), &Aob::hadamard(9, 7));
        assert_eq!(t.pop_all(&v), oracle.pop_all());
        for e in 0..512u64 {
            assert_eq!(t.get(&v, e), oracle.get(e), "get {e}");
            assert_eq!(t.next(&v, e), oracle.next(e), "next {e}");
        }
        assert_eq!(t.next(&v, 0), oracle.next(0));
    }

    #[test]
    fn from_aob_roundtrip() {
        let mut st = 99u64;
        let v = Aob::from_fn(10, |_| {
            st ^= st << 13;
            st ^= st >> 7;
            st ^= st << 17;
            st & 1 != 0
        });
        let mut t = TreeCtx::new();
        let tr = t.from_aob(&v);
        assert_eq!(t.to_aob(&tr), v);
        assert_eq!(t.pop_all(&tr), v.pop_all());
    }

    #[test]
    fn mismatched_universes_error_instead_of_panicking() {
        let mut t = TreeCtx::new();
        let small = t.hadamard(8, 3);
        let large = t.hadamard(12, 3);
        assert_eq!(
            t.and(&small, &large),
            Err(TreeError::UniverseMismatch { a_ways: 8, b_ways: 12 })
        );
        assert_eq!(t.or(&large, &small).unwrap_err().to_string(),
            "operands cover different universes: 12-way vs 8-way");
        // The context stays fully usable after the error.
        let ok = t.xor(&small, &small).unwrap();
        assert!(!t.any(&ok));
    }

    #[test]
    fn foreign_tree_height_mismatch_is_a_typed_error() {
        // A PTree is only meaningful in the context that built it. Feed a
        // structurally-inconsistent foreign root id (same claimed level,
        // different actual node height) and the gate must return
        // HeightMismatch, not abort the process.
        let mut host = TreeCtx::new();
        let good = host.hadamard(7, 6); // arena: leaf(0)=0, leaf(!0)=1, branch=2
        let mut other = TreeCtx::new();
        let foreign = other.constant(7, false); // arena: leaf(0)=0, branch(0,0)=1
        // In `host`, node id 1 is a Leaf while `good.root` is a Branch.
        assert_eq!(host.and(&foreign, &good), Err(TreeError::HeightMismatch));
        assert_eq!(
            TreeError::HeightMismatch.to_string(),
            "operand trees have different heights"
        );
        // Still usable afterwards.
        let v = host.and(&good, &good).unwrap();
        assert_eq!(host.pop_all(&v), 1 << 6);
    }

    #[test]
    fn pathological_flat_re_case_is_easy_here() {
        // H(6) AND H(39) at E = 40: the flat single-level RE blows past its
        // representation budget; the nested tree handles it in O(E) nodes.
        let mut t = TreeCtx::new();
        let before = t.node_count();
        let a = t.hadamard(40, 6);
        let b = t.hadamard(40, 39);
        let c = t.and(&a, &b).unwrap();
        assert!(t.node_count() - before < 150, "{} new nodes", t.node_count() - before);
        // Semantics: ones exactly where both bit 6 and bit 39 of e are set.
        assert_eq!(t.pop_all(&c), 1u64 << 38);
        assert!(!t.get(&c, 1 << 6));
        assert!(!t.get(&c, 1 << 39));
        assert!(t.get(&c, (1 << 6) | (1 << 39)));
        assert_eq!(t.next(&c, 0), Some((1 << 39) | (1 << 6)));
        // And the flat representation indeed refuses:
        let mut ctx = PbpContext::new(40);
        let fa = ctx.hadamard(6);
        let fb = ctx.hadamard(39);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.and(&fa, &fb)));
        assert!(r.is_err(), "flat RE should hit its representation budget");
    }

    #[test]
    fn hash_consing_shares_subtrees_across_values() {
        let mut t = TreeCtx::new();
        let h1 = t.hadamard(30, 10);
        let h2 = t.hadamard(30, 10);
        assert_eq!(h1, h2); // literally the same node id
        let n1 = t.node_count();
        let _h3 = t.hadamard(30, 11); // shares all the uniform subtrees
        assert!(t.node_count() - n1 < 40);
    }

    #[test]
    fn memoization_makes_repeated_ops_free() {
        let mut t = TreeCtx::new();
        let a = t.hadamard(32, 5);
        let b = t.hadamard(32, 30);
        let c1 = t.and(&a, &b).unwrap();
        let nodes_after_first = t.node_count();
        let c2 = t.and(&a, &b).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(t.node_count(), nodes_after_first);
    }

    #[test]
    fn gate_identities_hold_at_scale() {
        let mut t = TreeCtx::new();
        let a = t.hadamard(36, 7);
        let b = t.hadamard(36, 33);
        // De Morgan at 2^36 channels, structurally.
        let and_ab = t.and(&a, &b).unwrap();
        let lhs = t.not(&and_ab);
        let na = t.not(&a);
        let nb = t.not(&b);
        let rhs = t.or(&na, &nb).unwrap();
        assert_eq!(lhs, rhs, "hash-consing makes equal values identical nodes");
        // x ^ x = 0.
        let z = t.xor(&a, &a).unwrap();
        assert!(!t.any(&z));
    }

    #[test]
    fn next_deep_descent() {
        // A single 1 at the very last channel of a 2^36 universe.
        let mut t = TreeCtx::new();
        let h = (0..36).fold(t.constant(36, true), |acc, k| {
            let hk = t.hadamard(36, k);
            t.and(&acc, &hk).unwrap()
        });
        // acc = AND of all H(k) = 1 only where every bit set = last channel.
        assert_eq!(t.pop_all(&h), 1);
        let last = (1u64 << 36) - 1;
        assert_eq!(t.next(&h, 0), Some(last));
        assert_eq!(t.next(&h, last), None);
        assert!(t.get(&h, last));
    }
}

// ---------------------------------------------------------------------
// Word-level (pint) layer over nested trees: the full Figure 9 algorithm
// at entanglement degrees beyond the paper's 16-way hardware.
// ---------------------------------------------------------------------

/// A superposed integer over nested-tree pbits (little-endian).
#[derive(Debug, Clone)]
pub struct TPint {
    bits: Vec<PTree>,
}

impl TPint {
    /// Width in pbits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Bit `i`.
    pub fn bit(&self, i: usize) -> PTree {
        self.bits[i]
    }
}

impl TreeCtx {
    /// Constant `value` as a `width`-pbit integer over `2^ways` channels.
    pub fn tpint_mk(&mut self, ways: u32, width: usize, value: u64) -> TPint {
        let bits = (0..width)
            .map(|i| self.constant(ways, (value >> i) & 1 != 0))
            .collect();
        TPint { bits }
    }

    /// Hadamard superposition: bit `i` uses channel dimension `dims + i`.
    pub fn tpint_h(&mut self, ways: u32, width: usize, first_dim: u32) -> TPint {
        let bits = (0..width as u32)
            .map(|i| self.hadamard(ways, first_dim + i))
            .collect();
        TPint { bits }
    }

    /// Zero-extend or truncate.
    pub fn tpint_resize(&mut self, a: &TPint, width: usize) -> TPint {
        let ways = a.bits[0].ways();
        let mut bits = a.bits.clone();
        while bits.len() < width {
            bits.push(self.constant(ways, false));
        }
        bits.truncate(width);
        TPint { bits }
    }

    /// Ripple-carry addition (one pbit wider). A malformed operand mix
    /// (bits over different universes) surfaces as a [`TreeError`].
    pub fn tpint_add(&mut self, a: &TPint, b: &TPint) -> Result<TPint, TreeError> {
        let w = a.width().max(b.width());
        let ways = a.bits[0].ways();
        let a = self.tpint_resize(a, w);
        let b = self.tpint_resize(b, w);
        let mut carry = self.constant(ways, false);
        let mut bits = Vec::with_capacity(w + 1);
        for i in 0..w {
            let (x, y) = (a.bits[i], b.bits[i]);
            let xy = self.xor(&x, &y)?;
            let sum = self.xor(&xy, &carry)?;
            let and_xy = self.and(&x, &y)?;
            let and_cxy = self.and(&carry, &xy)?;
            carry = self.or(&and_xy, &and_cxy)?;
            bits.push(sum);
        }
        bits.push(carry);
        Ok(TPint { bits })
    }

    /// Shift-and-add multiplication (exact).
    pub fn tpint_mul(&mut self, a: &TPint, b: &TPint) -> Result<TPint, TreeError> {
        let ways = a.bits[0].ways();
        let wr = a.width() + b.width();
        let mut acc = self.tpint_mk(ways, wr, 0);
        for i in 0..b.width() {
            let bi = b.bits[i];
            let mut masked = Vec::with_capacity(a.width());
            for x in &a.bits {
                masked.push(self.and(x, &bi)?);
            }
            let mut shifted: Vec<PTree> = (0..i).map(|_| self.constant(ways, false)).collect();
            shifted.extend(masked);
            let partial = self.tpint_resize(&TPint { bits: shifted }, wr);
            let sum = self.tpint_add(&acc, &partial)?;
            acc = self.tpint_resize(&sum, wr);
        }
        Ok(acc)
    }

    /// Equality → a single pbit.
    pub fn tpint_eq(&mut self, a: &TPint, b: &TPint) -> Result<PTree, TreeError> {
        let ways = a.bits[0].ways();
        let w = a.width().max(b.width());
        let a = self.tpint_resize(a, w);
        let b = self.tpint_resize(b, w);
        let mut acc = self.constant(ways, true);
        for i in 0..w {
            let x = self.xor(&a.bits[i], &b.bits[i])?;
            let eq = self.not(&x);
            acc = self.and(&acc, &eq)?;
        }
        Ok(acc)
    }

    /// Value of the integer in one channel (descents only).
    pub fn tpint_value_at(&self, p: &TPint, e: u64) -> u64 {
        p.bits
            .iter()
            .enumerate()
            .map(|(i, b)| (self.get(b, e) as u64) << i)
            .sum()
    }

    /// Read the values of `p` on the 1-channels of `mask`, via `next`
    /// chaining — O(answers × height), never O(2^E). Capped at `limit`.
    pub fn tpint_measure_where(&self, p: &TPint, mask: &PTree, limit: usize) -> Vec<u64> {
        let mut out = std::collections::BTreeSet::new();
        if self.get(mask, 0) {
            out.insert(self.tpint_value_at(p, 0));
        }
        let mut e = 0u64;
        while out.len() < limit {
            let Some(nx) = self.next(mask, e) else { break };
            out.insert(self.tpint_value_at(p, nx));
            e = nx;
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tpint_tests {
    use super::*;

    #[test]
    fn arithmetic_matches_u64_per_channel() {
        let mut t = TreeCtx::new();
        let a = t.tpint_h(12, 4, 0);
        let b = t.tpint_h(12, 4, 4);
        let s = t.tpint_add(&a, &b).unwrap();
        let m = t.tpint_mul(&a, &b).unwrap();
        for e in (0..4096u64).step_by(37) {
            let (x, y) = (e & 0xF, (e >> 4) & 0xF);
            assert_eq!(t.tpint_value_at(&s, e), x + y, "add e={e}");
            assert_eq!(t.tpint_value_at(&m, e), x * y, "mul e={e}");
        }
    }

    #[test]
    fn figure9_factoring_on_trees_at_16_way() {
        // Same algorithm, same answers as the flat engines.
        let mut t = TreeCtx::new();
        let n = t.tpint_mk(16, 8, 221);
        let b = t.tpint_h(16, 8, 0);
        let c = t.tpint_h(16, 8, 8);
        let d = t.tpint_mul(&b, &c).unwrap();
        let e = t.tpint_eq(&d, &n).unwrap();
        assert_eq!(t.pop_all(&e), 4);
        let factors = t.tpint_measure_where(&b, &e, 100);
        assert_eq!(factors, vec![1, 13, 17, 221]);
    }

    #[test]
    fn factoring_beyond_the_papers_hardware_20_way() {
        // 899 = 29 × 31 with 10-bit operands: 20-way entanglement —
        // 1,048,576 channels, beyond the 16-way Qat register and beyond
        // what the flat RE survives for this op mix. The nested trees
        // factor it symbolically.
        let mut t = TreeCtx::new();
        let n = t.tpint_mk(20, 10, 899);
        let b = t.tpint_h(20, 10, 0);
        let c = t.tpint_h(20, 10, 10);
        let d = t.tpint_mul(&b, &c).unwrap();
        let e = t.tpint_eq(&d, &n).unwrap();
        assert_eq!(t.pop_all(&e), 4);
        let factors = t.tpint_measure_where(&b, &e, 100);
        assert_eq!(factors, vec![1, 29, 31, 899]);
    }

    #[test]
    fn prime_detection_at_18_way() {
        // 509 is prime: only the trivial pairs (1,509),(509,1) satisfy.
        let mut t = TreeCtx::new();
        let n = t.tpint_mk(18, 9, 509);
        let b = t.tpint_h(18, 9, 0);
        let c = t.tpint_h(18, 9, 9);
        let d = t.tpint_mul(&b, &c).unwrap();
        let e = t.tpint_eq(&d, &n).unwrap();
        assert_eq!(t.pop_all(&e), 2);
        assert_eq!(t.tpint_measure_where(&b, &e, 100), vec![1, 509]);
    }

    #[test]
    fn mismatched_pint_operands_degrade_gracefully() {
        // A bad gate program mixing universes gets an Err from the whole
        // pint layer instead of aborting the simulator.
        let mut t = TreeCtx::new();
        let a = t.tpint_h(10, 4, 0);
        let b = t.tpint_h(12, 4, 0);
        assert!(matches!(t.tpint_add(&a, &b), Err(TreeError::UniverseMismatch { .. })));
        assert!(matches!(t.tpint_mul(&a, &b), Err(TreeError::UniverseMismatch { .. })));
        assert!(matches!(t.tpint_eq(&a, &b), Err(TreeError::UniverseMismatch { .. })));
        // And the context still works for well-formed programs.
        let ok = t.tpint_add(&a, &a).unwrap();
        assert_eq!(t.tpint_value_at(&ok, 5), 2 * 5);
    }

    #[test]
    fn measure_where_empty_and_capped() {
        let mut t = TreeCtx::new();
        let b = t.tpint_h(10, 4, 0);
        let never = t.constant(10, false);
        assert!(t.tpint_measure_where(&b, &never, 100).is_empty());
        let always = t.constant(10, true);
        let capped = t.tpint_measure_where(&b, &always, 3);
        assert_eq!(capped.len(), 3);
    }
}
