//! Property tests for the RE-compressed pbit representation: compression
//! must be invisible. Every RE operation must agree with the flat-AoB
//! ground truth on arbitrary (incompressible) inputs, and the round trip
//! `from_aob → to_aob` must be the identity.

use pbp::PbpContext;
use pbp_aob::Aob;
use proptest::prelude::*;

/// Universe sizes to exercise: one chunk (64 ways = 2^6), a few chunks,
/// and a non-trivial repetition count.
const WAYS: [u32; 3] = [6, 8, 10];

/// An arbitrary (generally incompressible) AoB for a `ways`-universe,
/// built from random 64-bit chunks.
fn aob(ways: u32) -> impl Strategy<Value = Aob> {
    let chunks = 1usize << (ways - 6);
    proptest::collection::vec(any::<u64>(), chunks)
        .prop_map(move |words| Aob::from_fn(ways, |e| (words[(e / 64) as usize] >> (e % 64)) & 1 == 1))
}

proptest! {
    #[test]
    fn from_aob_to_aob_round_trips(ix in 0usize..3, seed_words in proptest::collection::vec(any::<u64>(), 16)) {
        let ways = WAYS[ix];
        let chunks = 1u64 << (ways - 6);
        let a = Aob::from_fn(ways, |e| {
            (seed_words[(e / 64 % chunks.min(16)) as usize] >> (e % 64)) & 1 == 1
        });
        let mut ctx = PbpContext::new(ways);
        let re = ctx.from_aob(&a);
        prop_assert_eq!(ctx.to_aob(&re), a);
    }

    #[test]
    fn unary_and_binary_gates_match_flat_aob(pair in (0usize..3).prop_flat_map(|i| (aob(WAYS[i]), aob(WAYS[i]), Just(i)))) {
        let (a, b, widx) = pair;
        let ways = WAYS[widx];
        let mut ctx = PbpContext::new(ways);
        let ra = ctx.from_aob(&a);
        let rb = ctx.from_aob(&b);

        let rnot = ctx.not(&ra);
        prop_assert_eq!(ctx.to_aob(&rnot), a.not_of());
        let rand_ = ctx.and(&ra, &rb);
        prop_assert_eq!(ctx.to_aob(&rand_), Aob::and_of(&a, &b));
        let ror = ctx.or(&ra, &rb);
        prop_assert_eq!(ctx.to_aob(&ror), Aob::or_of(&a, &b));
        let rxor = ctx.xor(&ra, &rb);
        prop_assert_eq!(ctx.to_aob(&rxor), Aob::xor_of(&a, &b));
    }

    #[test]
    fn mux_matches_flat_aob(trip in (0usize..3).prop_flat_map(|i| (aob(WAYS[i]), aob(WAYS[i]), aob(WAYS[i]), Just(i)))) {
        let (sel, t, f, widx) = trip;
        let ways = WAYS[widx];
        let mut ctx = PbpContext::new(ways);
        let rs = ctx.from_aob(&sel);
        let rt = ctx.from_aob(&t);
        let rf = ctx.from_aob(&f);
        let rmux = ctx.mux(&rs, &rt, &rf);
        prop_assert_eq!(ctx.to_aob(&rmux), Aob::mux_of(&sel, &t, &f));
    }

    #[test]
    fn measurements_match_flat_aob(pair in (0usize..3).prop_flat_map(|i| (aob(WAYS[i]), Just(i))), d in any::<u64>(), e in any::<u64>()) {
        let (a, widx) = pair;
        let ways = WAYS[widx];
        let n = 1u64 << ways;
        let (d, e) = (d % ways as u64, e % n);
        let mut ctx = PbpContext::new(ways);
        let re = ctx.from_aob(&a);
        prop_assert_eq!(ctx.re_get(&re, e), a.get(e));
        prop_assert_eq!(ctx.re_next(&re, d), a.next(d));
        prop_assert_eq!(ctx.re_pop_after(&re, d), a.pop_after(d));
        prop_assert_eq!(ctx.re_pop_all(&re), a.pop_all());
        prop_assert_eq!(ctx.re_any(&re), a.pop_all() > 0);
        prop_assert_eq!(ctx.re_all(&re), a.pop_all() == n);
    }

    #[test]
    fn hadamard_constants_compress_and_match(k in 0u32..10, ix in 0usize..3) {
        let ways = WAYS[ix];
        let mut ctx = PbpContext::new(ways);
        let re = ctx.hadamard(k);
        prop_assert_eq!(ctx.to_aob(&re), Aob::hadamard(ways, k));
        // The paper's §1.2 point: H(k) stays run-length tiny no matter
        // how large the universe is.
        prop_assert!(re.storage_runs() <= 2, "H({k}) uses {} runs", re.storage_runs());
    }

    #[test]
    fn re_eq_agrees_with_aob_equality(pair in (0usize..3).prop_flat_map(|i| (aob(WAYS[i]), aob(WAYS[i]), Just(i)))) {
        let (a, b, widx) = pair;
        let mut ctx = PbpContext::new(WAYS[widx]);
        let ra = ctx.from_aob(&a);
        let rb = ctx.from_aob(&b);
        prop_assert_eq!(ctx.re_eq(&ra, &rb), a == b);
        let ra2 = ctx.from_aob(&a);
        prop_assert!(ctx.re_eq(&ra, &ra2));
    }
}
