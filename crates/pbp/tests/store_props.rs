//! Property tests for `tangled-store/v1` ChunkStore snapshots: a
//! save→load round trip must be *observably equivalent* — the same
//! chunk patterns resolve to the same [`pbp_aob::ChunkId`]s, and a
//! replay of the memoized gate ops answers entirely from the loaded op
//! cache (zero fresh kernel compiles) — while any truncated or
//! bit-flipped container fails with a typed [`tangled_store::StoreError`]
//! instead of a panic or a silently wrong store.

use pbp_aob::{ChunkStore, GateOp};
use proptest::prelude::*;
use tangled_store::StoreError;

/// A random interning workload at a sub-chunk degree: words to intern
/// plus memoized ops over whatever got interned.
#[derive(Debug, Clone)]
struct Workload {
    ways: u32,
    words: Vec<u64>,
    /// (op selector, a index, b index) into the interned-id list.
    ops: Vec<(u8, usize, usize)>,
}

fn workload() -> impl Strategy<Value = Workload> {
    (1u32..=6, proptest::collection::vec(any::<u64>(), 1..24)).prop_flat_map(|(ways, words)| {
        let n = words.len();
        proptest::collection::vec((0u8..4, 0..n, 0..n), 0..32)
            .prop_map(move |ops| Workload { ways, words: words.clone(), ops })
    })
}

/// Build the store: intern every word, then run every op (populating the
/// memoized op cache). Returns the store and the ids each step produced.
fn build(w: &Workload) -> (ChunkStore, Vec<pbp_aob::ChunkId>, Vec<pbp_aob::ChunkId>) {
    let mut s = ChunkStore::new(w.ways);
    let interned: Vec<_> = w.words.iter().map(|&word| s.intern_word(word)).collect();
    let op_ids: Vec<_> = w
        .ops
        .iter()
        .map(|&(op, a, b)| match op {
            0 => s.not(interned[a]),
            1 => s.binop(GateOp::And, interned[a], interned[b]),
            2 => s.binop(GateOp::Or, interned[a], interned[b]),
            _ => s.binop(GateOp::Xor, interned[a], interned[b]),
        })
        .collect();
    (s, interned, op_ids)
}

proptest! {
    /// Save→load preserves every observable: chunk count and degree, the
    /// id every pattern resolves to, and the op cache — replaying the
    /// same ops on the loaded store returns identical ids with *every*
    /// lookup a hit (the "no redundant kernel compiles" contract the
    /// warm-start bench gates on).
    #[test]
    fn snapshot_round_trips_observably(w in workload()) {
        let (orig, interned, op_ids) = build(&w);
        let bytes = orig.to_bytes();
        let mut loaded = ChunkStore::from_bytes(&bytes).expect("own snapshot loads");
        prop_assert_eq!(loaded.ways(), orig.ways());
        prop_assert_eq!(loaded.len(), orig.len());

        // Same ChunkId resolution for every interned pattern...
        for (i, &word) in w.words.iter().enumerate() {
            prop_assert_eq!(loaded.intern_word(word), interned[i]);
        }
        // ...and an op replay that answers entirely from the cache.
        loaded.reset_stats();
        for (k, &(op, a, b)) in w.ops.iter().enumerate() {
            let got = match op {
                0 => loaded.not(interned[a]),
                1 => loaded.binop(GateOp::And, interned[a], interned[b]),
                2 => loaded.binop(GateOp::Or, interned[a], interned[b]),
                _ => loaded.binop(GateOp::Xor, interned[a], interned[b]),
            };
            prop_assert_eq!(got, op_ids[k]);
        }
        let stats = loaded.stats();
        prop_assert_eq!(stats.misses, 0, "warm replay must compile no kernels");
        prop_assert_eq!(stats.hits, w.ops.len() as u64);

        // Serialization is canonical: the loaded store re-serializes to
        // the identical bytes (chunks in id order, ops sorted).
        prop_assert_eq!(loaded.to_bytes(), bytes);
    }

    /// Every truncation of a valid snapshot fails with a typed error.
    #[test]
    fn truncation_is_a_typed_error(w in workload(), cut_sel in any::<u64>()) {
        let (orig, _, _) = build(&w);
        let bytes = orig.to_bytes();
        let cut = (cut_sel % bytes.len() as u64) as usize;
        match ChunkStore::from_bytes(&bytes[..cut]) {
            Err(
                StoreError::BadMagic
                | StoreError::Truncated(_)
                | StoreError::ChecksumMismatch { .. }
                | StoreError::MissingSection(_),
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error class at cut {cut}: {e}"),
            Ok(_) => prop_assert!(false, "truncation to {cut} bytes loaded"),
        }
    }

    /// Every single-bit flip is either detected with a typed error or —
    /// never — silently accepted as a different store. (Flips in section
    /// padding can't exist: the container has none.)
    #[test]
    fn bit_flips_are_typed_errors(w in workload(), pos in any::<u64>(), bit in 0u8..8) {
        let (orig, _, _) = build(&w);
        let mut bytes = orig.to_bytes();
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= 1 << bit;
        match ChunkStore::from_bytes(&bytes) {
            Err(_) => {} // every StoreError variant is acceptable; a panic is not
            Ok(loaded) => {
                // The only survivable flips would reproduce the identical
                // observable store (impossible for a real flip, but keep
                // the property falsifiable rather than assuming).
                prop_assert_eq!(loaded.to_bytes(), orig.to_bytes(),
                    "bit flip at byte {} bit {} loaded as a different store", i, bit);
            }
        }
    }
}

/// Loading a corpus journal as a chunk snapshot is a kind mismatch, not
/// a parse attempt.
#[test]
fn wrong_kind_is_typed() {
    let dir = std::env::temp_dir().join(format!("pbp-store-kind-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = tangled_store::CorpusDb::dir_path(&dir);
    let mut db = tangled_store::CorpusDb::open(&path).unwrap();
    db.insert(tangled_store::CorpusEntry::from_text("a", "sys\n", 8, false)).unwrap();
    assert!(matches!(
        ChunkStore::load(&path),
        Err(StoreError::WrongKind { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
