//! Property tests for the packed-RLE register file: random Table 3 gate
//! programs — every gate, including the aliased `cswap`/`ccnot` corners —
//! must leave the [`SparseReFile`] bit-identical to the [`EagerFile`]
//! oracle at every supported hardware degree, and the measurement family
//! must agree without ever materializing a register.

use pbp::SparseReFile;
use pbp_aob::storage::{AobStorage, ConstKind, EagerFile, REG_COUNT};
use pbp_aob::GateOp;
use proptest::prelude::*;

/// One Table 3 register-file operation, with register operands drawn from
/// a small window so aliasing (`a == b`, `a == b == c`) is common.
#[derive(Debug, Clone, Copy)]
enum Op {
    Const(u8, u8),        // reg, kind selector (zeros / ones / H(k))
    Not(u8),
    Bin(GateOp, u8, u8, u8),
    Ccnot(u8, u8, u8),
    Swap(u8, u8),
    Cswap(u8, u8, u8),
}

const REGS: u8 = 10;

fn op() -> impl Strategy<Value = Op> {
    let r = 0u8..REGS;
    prop_oneof![
        (r.clone(), 0u8..20).prop_map(|(a, k)| Op::Const(a, k)),
        r.clone().prop_map(Op::Not),
        (0u8..3, r.clone(), r.clone(), r.clone()).prop_map(|(o, a, b, c)| {
            let op = [GateOp::And, GateOp::Or, GateOp::Xor][o as usize];
            Op::Bin(op, a, b, c)
        }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Ccnot(a, b, c)),
        (r.clone(), r.clone()).prop_map(|(a, b)| Op::Swap(a, b)),
        (r.clone(), r.clone(), r).prop_map(|(a, b, c)| Op::Cswap(a, b, c)),
    ]
}

fn apply(f: &mut dyn AobStorage, ops: &[Op]) {
    for &o in ops {
        match o {
            Op::Const(a, k) => {
                let kind = match k {
                    0 => ConstKind::Zeros,
                    1 => ConstKind::Ones,
                    k => ConstKind::Hadamard((k - 2) as u32), // k >= ways: zeros
                };
                f.write_const(a as usize, kind, false);
            }
            Op::Not(a) => {
                f.gate_not(a as usize, false);
            }
            Op::Bin(op, a, b, c) => {
                f.gate_bin(op, a as usize, b as usize, c as usize, false);
            }
            Op::Ccnot(a, b, c) => {
                f.gate_ccnot(a as usize, b as usize, c as usize, false);
            }
            Op::Swap(a, b) => {
                f.gate_swap(a as usize, b as usize, false);
            }
            Op::Cswap(a, b, c) => {
                f.gate_cswap(a as usize, b as usize, c as usize, false);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed sparse-re ≡ eager over random gate programs at every
    /// hardware degree, including sub-chunk universes.
    #[test]
    fn packed_sparse_re_equals_eager(
        ways in prop_oneof![Just(1u32), Just(3), Just(5), Just(6), Just(8), Just(12), Just(16)],
        bank in any::<bool>(),
        ops in proptest::collection::vec(op(), 1..60),
    ) {
        let mut eager = EagerFile::new(ways, bank);
        let mut sparse = SparseReFile::new(ways, bank);
        apply(&mut eager, &ops);
        apply(&mut sparse, &ops);

        // Architectural state is bit-identical...
        for r in 0..REG_COUNT {
            prop_assert_eq!(eager.read(r), sparse.read(r), "ways {} @{}", ways, r);
        }
        // ...and so is the measurement family, straight off the packed
        // runs (reads above are the only materializations).
        sparse.reset_stats();
        let n = 1u64 << ways;
        for r in 0..REGS as usize {
            for e in [0, 1, n / 2, n - 1] {
                prop_assert_eq!(eager.meas(r, e), sparse.meas(r, e), "@{} meas {}", r, e);
                prop_assert_eq!(eager.next(r, e), sparse.next(r, e), "@{} next {}", r, e);
                prop_assert_eq!(
                    eager.pop_after(r, e), sparse.pop_after(r, e), "@{} pop {}", r, e
                );
            }
        }
        prop_assert_eq!(sparse.materializations(), 0);

        // The packed stats surface never reports a loss to the flat-run
        // baseline at these degrees (every run fits one command payload).
        let stats = sparse.packed_stats().unwrap();
        prop_assert!(stats.flat_words >= stats.packed_words, "{:?}", stats);
    }

    /// Packing is deterministic: replaying the same program into a fresh
    /// file reproduces the exact same packed footprint.
    #[test]
    fn packed_encoding_is_replayable(
        ways in prop_oneof![Just(5u32), Just(8), Just(16)],
        ops in proptest::collection::vec(op(), 1..40),
    ) {
        let run = || {
            let mut f = SparseReFile::new(ways, true);
            apply(&mut f, &ops);
            f
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.packed_stats(), b.packed_stats());
        for r in 0..REG_COUNT {
            prop_assert_eq!(a.re(r), b.re(r), "@{} diverged", r);
        }
    }
}
