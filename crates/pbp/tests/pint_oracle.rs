//! Property tests: pint arithmetic on superpositions agrees with plain
//! u64 arithmetic in *every* entanglement channel — the strongest possible
//! statement of the PBP model's correctness (each channel is a complete
//! classical computation).

use pbp::PbpContext;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn add_matches_u64(wa in 1usize..5, wb in 1usize..4, ka in 0u64..16, kb in 0u64..16) {
        let mut ctx = PbpContext::new(10);
        let a = ctx.pint_h_auto(wa);
        let b = ctx.pint_h_auto(wb);
        let ca = ctx.pint_mk(wa, ka & ((1 << wa) - 1));
        let cb = ctx.pint_mk(wb, kb & ((1 << wb) - 1));
        let sab = ctx.pint_add(&a, &b);
        let sac = ctx.pint_add(&a, &cb);
        let scc = ctx.pint_add(&ca, &cb);
        for e in (0..1024u64).step_by(7) {
            let va = ctx.pint_value_at(&a, e);
            let vb = ctx.pint_value_at(&b, e);
            prop_assert_eq!(ctx.pint_value_at(&sab, e), va + vb);
            prop_assert_eq!(ctx.pint_value_at(&sac, e), va + (kb & ((1 << wb) - 1)));
            prop_assert_eq!(
                ctx.pint_value_at(&scc, e),
                (ka & ((1 << wa) - 1)) + (kb & ((1 << wb) - 1))
            );
        }
    }

    #[test]
    fn mul_matches_u64(wa in 1usize..4, wb in 1usize..4) {
        let mut ctx = PbpContext::new(10);
        let a = ctx.pint_h_auto(wa);
        let b = ctx.pint_h_auto(wb);
        let p = ctx.pint_mul(&a, &b);
        for e in (0..1024u64).step_by(11) {
            let va = ctx.pint_value_at(&a, e);
            let vb = ctx.pint_value_at(&b, e);
            prop_assert_eq!(ctx.pint_value_at(&p, e), va * vb);
        }
    }

    #[test]
    fn sub_matches_wrapping_u64(w in 2usize..5, k in 0u64..32) {
        let mut ctx = PbpContext::new(10);
        let a = ctx.pint_h_auto(w);
        let c = ctx.pint_mk(w, k & ((1 << w) - 1));
        let d = ctx.pint_sub(&a, &c);
        let mask = (1u64 << w) - 1;
        for e in (0..1024u64).step_by(13) {
            let va = ctx.pint_value_at(&a, e);
            prop_assert_eq!(ctx.pint_value_at(&d, e), va.wrapping_sub(k & mask) & mask);
        }
    }

    #[test]
    fn predicates_match_u64(w in 1usize..5, k in 0u64..32) {
        let mut ctx = PbpContext::new(10);
        let a = ctx.pint_h_auto(w);
        let c = ctx.pint_mk(w, k & ((1 << w) - 1));
        let kk = k & ((1 << w) - 1);
        let eq = ctx.pint_eq(&a, &c);
        let ne = ctx.pint_ne(&a, &c);
        let lt = ctx.pint_lt(&a, &c);
        for e in (0..1024u64).step_by(9) {
            let va = ctx.pint_value_at(&a, e);
            prop_assert_eq!(ctx.re_get(&eq, e), va == kk);
            prop_assert_eq!(ctx.re_get(&ne, e), va != kk);
            prop_assert_eq!(ctx.re_get(&lt, e), va < kk);
        }
    }

    #[test]
    fn bitwise_matches_u64(w in 1usize..5) {
        let mut ctx = PbpContext::new(10);
        let a = ctx.pint_h_auto(w);
        let b = ctx.pint_h_auto(w);
        let and = ctx.pint_and(&a, &b);
        let xor = ctx.pint_xor(&a, &b);
        let not = ctx.pint_not(&a);
        let mask = (1u64 << w) - 1;
        for e in (0..1024u64).step_by(17) {
            let va = ctx.pint_value_at(&a, e);
            let vb = ctx.pint_value_at(&b, e);
            prop_assert_eq!(ctx.pint_value_at(&and, e), va & vb);
            prop_assert_eq!(ctx.pint_value_at(&xor, e), va ^ vb);
            prop_assert_eq!(ctx.pint_value_at(&not, e), !va & mask);
        }
    }

    #[test]
    fn measure_counts_match_brute_force(w in 1usize..4, k in 1u64..8) {
        let mut ctx = PbpContext::new(8);
        let a = ctx.pint_h_auto(w);
        let c = ctx.pint_mk(3, k);
        let p = ctx.pint_mul(&a, &c);
        let measured = ctx.pint_measure(&p);
        // Brute-force histogram over all channels.
        let mut expect = std::collections::BTreeMap::new();
        for e in 0..256u64 {
            *expect.entry(ctx.pint_value_at(&p, e)).or_insert(0u64) += 1;
        }
        prop_assert_eq!(measured.len(), expect.len());
        for mv in measured {
            prop_assert_eq!(expect[&mv.value], mv.count);
        }
    }
}
