//! The typed job API: what a client submits and what comes back.
//!
//! A [`JobSpec`] is self-contained — encoded words or a generator seed
//! plus a [`DiffConfig`] — so any worker can execute it on a fresh
//! [`Machine`](tangled_sim::Machine) built from the engine and storage
//! registries. Execution is deterministic: the same spec yields the same
//! [`JobResult`] payload whichever worker runs it and however many
//! workers the pool has.

use tangled_isa::Insn;
use tangled_telemetry::Histogram;
use tangled_sim::difftest::{
    compare_all, pbp_crosscheck, qsim_crosscheck, run_model, DiffConfig, Outcome,
};
use tangled_sim::engine::ModelEntry;
use tangled_sim::proggen::{
    encode_program, random_program, random_qat_only_program, random_reversible_qat_program,
    ProgGenOptions, Profile,
};
use tangled_sim::{shrink, Coverage};

/// Per-kind job latency in *simulated cycles* (the reference outcome's
/// step count): deterministic for a fixed spec, so exported quantiles
/// are byte-stable at any worker count. Recorded inside [`execute`],
/// which runs under the worker's scoped capture — the samples land in
/// each job's own metrics and merge across the campaign.
static JOB_CYCLES_RUN: Histogram = Histogram::new("serve.job.cycles.run");
static JOB_CYCLES_DIFFERENTIAL: Histogram = Histogram::new("serve.job.cycles.differential");
static JOB_CYCLES_GENERATE: Histogram = Histogram::new("serve.job.cycles.generate");

/// How to resolve a [`JobKind::Run`] model name to a registry entry.
///
/// Defaults to [`tangled_sim::engine::model`]; tests swap in resolvers
/// that return synthetic entries (see `ModelEntry::custom`) to inject
/// misbehaving cores through the same code path production uses.
pub type ModelResolver = fn(&str) -> Option<&'static ModelEntry>;

/// What a job does.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Run one encoded program on one named registry model.
    Run {
        /// Encoded instruction words (the assembled image).
        words: Vec<u16>,
        /// Registry name (`"functional"`, `"pipeline-4-fw"`, …).
        model: String,
    },
    /// Run one encoded program through the full differential oracle.
    Differential {
        /// Encoded instruction words.
        words: Vec<u16>,
    },
    /// Generate a random program from a seed and fuzz it through the
    /// oracle — one iteration of a `qat-fuzz` campaign.
    Generate {
        /// Generator seed.
        seed: u64,
        /// Instruction-mix profile; `None` round-robins on the seed.
        profile: Option<Profile>,
        /// Body length for the generated program.
        len: usize,
        /// Also run the qsim state-vector and PBP word-level
        /// cross-checks (the fuzzer's `--cross-every` work).
        crosscheck: bool,
    },
}

impl JobKind {
    /// Stable lowercase tag — the latency-histogram suffix
    /// (`serve.job.cycles.<tag>`) and the live-line field name.
    pub fn tag(&self) -> &'static str {
        match self {
            JobKind::Run { .. } => "run",
            JobKind::Differential { .. } => "differential",
            JobKind::Generate { .. } => "generate",
        }
    }

    fn cycles_histogram(&self) -> &'static Histogram {
        match self {
            JobKind::Run { .. } => &JOB_CYCLES_RUN,
            JobKind::Differential { .. } => &JOB_CYCLES_DIFFERENTIAL,
            JobKind::Generate { .. } => &JOB_CYCLES_GENERATE,
        }
    }
}

/// One unit of work: a kind plus the oracle configuration it runs under.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// What to execute.
    pub kind: JobKind,
    /// Machine/oracle configuration (ways, backend, step budget, …).
    pub cfg: DiffConfig,
    /// Free-form client label, echoed in the result.
    pub label: String,
}

impl JobSpec {
    /// A job with an empty label.
    pub fn new(kind: JobKind, cfg: DiffConfig) -> JobSpec {
        JobSpec { kind, cfg, label: String::new() }
    }
}

/// Why a finding was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A model disagreed with the functional reference.
    Divergence,
    /// The Qat register file disagreed with the `qsim` state-vector
    /// baseline.
    QsimCrossCheck,
    /// The Qat register file disagreed with the word-level PBP model.
    PbpCrossCheck,
}

impl FindingKind {
    /// Stable lowercase tag (corpus file-name prefix, summary label).
    pub fn tag(self) -> &'static str {
        match self {
            FindingKind::Divergence => "div",
            FindingKind::QsimCrossCheck => "qsim",
            FindingKind::PbpCrossCheck => "pbp",
        }
    }
}

/// One conformance violation discovered by a job, carrying a minimized
/// reproducer program so the client can write a corpus entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which oracle flagged it.
    pub kind: FindingKind,
    /// Human-readable divergence description.
    pub detail: String,
    /// Reproducer (shrunk for divergences; verbatim for cross-checks).
    pub program: Vec<Insn>,
    /// Generator seed behind the reproducer.
    pub seed: u64,
}

/// Successful job payload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobOutput {
    /// Final architectural state (reference outcome for differential and
    /// generate jobs). `None` when a generate job diverged — there is no
    /// agreed-upon outcome to report, only [`JobOutput::findings`].
    pub outcome: Option<Outcome>,
    /// Model statistics line ([`Core::report`](tangled_sim::Core::report))
    /// for run jobs; empty otherwise.
    pub report: String,
    /// Conformance violations discovered (empty on a clean run).
    pub findings: Vec<Finding>,
    /// Opcode/branch coverage recorded by generate jobs.
    pub coverage: Option<Coverage>,
}

/// Typed per-job failure. A failed job never takes the pool down — the
/// error is the job's result and every other job proceeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// [`JobKind::Run`] named a model the resolver does not know.
    UnknownModel(String),
    /// The job panicked on its worker; the payload message is preserved.
    Panic(String),
    /// The job was discarded by [`Pool::discard_queued`](crate::Pool::discard_queued)
    /// or a shutdown before any worker picked it up.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::UnknownModel(m) => write!(f, "unknown model `{m}`"),
            JobError::Panic(msg) => write!(f, "job panicked: {msg}"),
            JobError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

/// A completed job: identity, provenance, metrics, and payload.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Submission-order id (monotonic per pool).
    pub id: u64,
    /// The client label from the spec.
    pub label: String,
    /// Index of the worker that executed (or cancelled) the job.
    pub worker: usize,
    /// Telemetry recorded by *this job alone* — captured with
    /// [`tangled_telemetry::scoped`], so concurrent jobs on other
    /// workers never bleed in. Merge across jobs with
    /// [`tangled_telemetry::Snapshot::merge_from`].
    pub metrics: tangled_telemetry::Snapshot,
    /// Payload or typed failure.
    pub result: Result<JobOutput, JobError>,
}

/// Generator options matching one campaign iteration of `qat-fuzz`.
fn gen_options(seed: u64, profile: Option<Profile>, len: usize, cfg: &DiffConfig) -> ProgGenOptions {
    let profiles = Profile::all();
    ProgGenOptions {
        len,
        ways: cfg.ways,
        profile: profile.unwrap_or_else(|| profiles[(seed % profiles.len() as u64) as usize]),
        qreg_floor: if cfg.constant_registers { 2 + cfg.ways as u8 } else { 0 },
        allow_qat_faults: cfg.constant_registers,
        ..Default::default()
    }
}

/// Execute one spec to completion. Pure apart from telemetry counters:
/// no filesystem, no globals — corpus writing stays with the client.
pub(crate) fn execute(spec: &JobSpec, resolve: ModelResolver) -> Result<JobOutput, JobError> {
    let result = execute_kind(spec, resolve);
    if let Ok(out) = &result {
        if let Some(outcome) = &out.outcome {
            // Simulated cycles, not wall time: the sample is a property
            // of the spec alone, so the histogram (and its quantiles)
            // is identical at any worker count.
            spec.kind.cycles_histogram().record(outcome.steps);
        }
    }
    result
}

fn execute_kind(spec: &JobSpec, resolve: ModelResolver) -> Result<JobOutput, JobError> {
    match &spec.kind {
        JobKind::Run { words, model } => {
            let entry = resolve(model).ok_or_else(|| JobError::UnknownModel(model.clone()))?;
            let mut core = entry.build(tangled_sim::Machine::with_image(
                spec.cfg.machine_config(),
                words,
            ));
            let fault = core.run_to_halt();
            let report = core.report();
            let outcome = tangled_sim::difftest::capture(core.machine(), fault);
            Ok(JobOutput { outcome: Some(outcome), report, ..Default::default() })
        }
        JobKind::Differential { words } => {
            let mut cov = Coverage::new();
            match compare_all(words, &spec.cfg, Some(&mut cov)) {
                Ok(outcome) => Ok(JobOutput {
                    outcome: Some(outcome),
                    coverage: Some(cov),
                    ..Default::default()
                }),
                Err(d) => Ok(JobOutput {
                    findings: vec![Finding {
                        kind: FindingKind::Divergence,
                        detail: d.to_string(),
                        program: Vec::new(),
                        seed: 0,
                    }],
                    coverage: Some(cov),
                    ..Default::default()
                }),
            }
        }
        JobKind::Generate { seed, profile, len, crosscheck } => {
            let seed = *seed;
            let cfg = spec.cfg;
            let mut cov = Coverage::new();
            let mut findings = Vec::new();
            let opts = gen_options(seed, *profile, *len, &cfg);
            let prog = random_program(seed, &opts);
            cov.note_generated(&prog);
            let words = encode_program(&prog);
            let outcome = match compare_all(&words, &cfg, Some(&mut cov)) {
                Ok(outcome) => Some(outcome),
                Err(d) => {
                    // Minimize on the worker: shrinking is deterministic,
                    // so campaigns stay reproducible across pool sizes,
                    // and the (expensive) re-runs parallelize with the
                    // rest of the campaign.
                    let small =
                        shrink(&prog, |p| compare_all(&encode_program(p), &cfg, None).is_err());
                    findings.push(Finding {
                        kind: FindingKind::Divergence,
                        detail: d.to_string(),
                        program: small,
                        seed,
                    });
                    None
                }
            };
            if *crosscheck {
                let rev = random_reversible_qat_program(seed, cfg.ways.min(4), 6, 25);
                if let Err(e) = qsim_crosscheck(&rev, cfg.ways.min(4)) {
                    findings.push(Finding {
                        kind: FindingKind::QsimCrossCheck,
                        detail: e,
                        program: rev,
                        seed,
                    });
                }
                let ways = cfg.ways.max(6); // the RE layer needs >= one chunk
                let qat_only = random_qat_only_program(seed, 40, ways, 8);
                if let Err(e) = pbp_crosscheck(&qat_only, ways) {
                    findings.push(Finding {
                        kind: FindingKind::PbpCrossCheck,
                        detail: e,
                        program: qat_only,
                        seed,
                    });
                }
            }
            Ok(JobOutput { outcome, report: String::new(), findings, coverage: Some(cov) })
        }
    }
}

/// Convenience used by both the pool's run-job path and tests: execute a
/// run job directly (no pool) — the CLI's `serve --model` single-shot.
pub fn run_model_once(words: &[u16], model: &str, cfg: &DiffConfig) -> Option<Outcome> {
    tangled_sim::engine::model(model).map(|e| run_model(e, words, cfg.machine_config()))
}
