//! The pool's flight recorder: periodic live snapshot lines while a
//! campaign runs, and post-mortem crash bundles when a job panics (or
//! the client is interrupted).
//!
//! ## Live lines
//!
//! The recorder counts completed jobs and, every
//! [`FlightConfig::interval`] completions, formats one single-line JSON
//! snapshot ([`LIVE_SCHEMA`]) and hands it to a heartbeat thread that
//! owns the actual I/O (so workers never block on a slow terminal). Line
//! *content* is built synchronously under the recorder lock from
//! deterministic inputs only — completion counts, cumulative simulated
//! cycles, and integer latency quantiles — so a single-worker run of a
//! fixed job set produces byte-identical lines every time. Wall-clock
//! time never appears; the `cycles` field is the stamp.
//!
//! ## Crash bundles
//!
//! With [`FlightConfig::crash_dir`] set, a panicking job writes
//! `crash-<jobid>.json` ([`CRASH_SCHEMA`]) before its result is
//! delivered: the failing [`JobSpec`], the dying job's scoped metrics,
//! the recorder's final snapshot, the last [`RECENT_JOBS`] completed job
//! ids, and the span ring (via [`tangled_telemetry::peek_trace`], which
//! does not drain, so a normal trace export at exit still works).
//! Clients can force a bundle for other reasons — the fuzzer's SIGINT
//! path calls [`crate::Pool::write_crash_bundle`].

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use tangled_telemetry::{bucket_quantile, TraceKind, HISTOGRAM_BUCKETS};

use crate::job::{JobError, JobKind, JobResult, JobSpec};

/// Schema identifier on every live snapshot line.
pub const LIVE_SCHEMA: &str = "tangled-live/v1";

/// Schema identifier inside every crash bundle.
pub const CRASH_SCHEMA: &str = "tangled-crash/v1";

/// How many recently completed job ids a crash bundle retains.
pub const RECENT_JOBS: usize = 16;

/// Most recent trace events embedded in a crash bundle (the ring holds
/// up to [`tangled_telemetry::TRACE_CAPACITY`]; a post-mortem wants the
/// tail, not megabytes).
const CRASH_TRACE_CAP: usize = 1024;

/// How often the heartbeat thread wakes to drain queued lines even when
/// nothing new completed.
const HEARTBEAT_TICK: Duration = Duration::from_millis(250);

/// Where live snapshot lines are written.
#[derive(Clone, Debug, Default)]
pub enum LineSink {
    /// Standard error (the default: stdout stays machine-readable).
    #[default]
    Stderr,
    /// Standard output.
    Stdout,
    /// Format but discard — the bench harness measures recorder overhead
    /// without terminal noise.
    Null,
    /// Append to a shared buffer; tests pin byte-stability here.
    Buffer(Arc<Mutex<Vec<u8>>>),
}

impl LineSink {
    fn write_line(&self, line: &str) {
        match self {
            LineSink::Stderr => {
                let _ = writeln!(std::io::stderr().lock(), "{line}");
            }
            LineSink::Stdout => {
                let _ = writeln!(std::io::stdout().lock(), "{line}");
            }
            LineSink::Null => {}
            LineSink::Buffer(buf) => {
                let mut buf = buf.lock().unwrap();
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
            }
        }
    }
}

/// Flight-recorder knobs, carried in
/// [`ServeConfig::flight`](crate::ServeConfig::flight).
#[derive(Clone, Debug)]
pub struct FlightConfig {
    /// Emit one live line every `interval` completed jobs. 0 disables
    /// periodic lines; the shutdown summary line is always emitted.
    pub interval: u64,
    /// Directory for `crash-*.json` bundles; `None` disables them.
    pub crash_dir: Option<PathBuf>,
    /// Where live lines go.
    pub sink: LineSink,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig { interval: 8, crash_dir: None, sink: LineSink::Stderr }
    }
}

/// Deterministic completion statistics guarded by the recorder lock.
#[derive(Default)]
struct FlightState {
    /// Line sequence number (1-based on the first emitted line).
    seq: u64,
    /// Completed jobs (delivered results, including errors).
    jobs: u64,
    /// Cumulative simulated cycles across completed jobs.
    cycles: u64,
    /// Completions per kind: run / differential / generate.
    kinds: [u64; 3],
    /// Findings reported by successful jobs.
    findings: u64,
    /// Jobs that completed as [`JobError::Panic`] or
    /// [`JobError::UnknownModel`].
    errors: u64,
    /// Jobs completed as [`JobError::Cancelled`].
    cancelled: u64,
    /// Power-of-two latency buckets over per-job simulated cycles
    /// (the [`tangled_telemetry::Histogram`] layout).
    buckets: [u64; HISTOGRAM_BUCKETS],
    /// Largest per-job cycle count seen.
    max_cycles: u64,
    /// Most recent completed job ids, oldest first.
    recent: VecDeque<u64>,
}

impl FlightState {
    fn bucket_of(v: u64) -> usize {
        let k = (64 - v.saturating_sub(1).leading_zeros()) as usize;
        k.min(HISTOGRAM_BUCKETS - 1)
    }

    /// One live snapshot line. Every field is derived from completion
    /// counts and simulated cycles, never wall-clock time.
    fn line(&mut self) -> String {
        self.seq += 1;
        let p50 = bucket_quantile(&self.buckets, self.max_cycles, 50);
        let p95 = bucket_quantile(&self.buckets, self.max_cycles, 95);
        let p99 = bucket_quantile(&self.buckets, self.max_cycles, 99);
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{LIVE_SCHEMA}\",\"seq\":{},\"jobs\":{},\"cycles\":{},\
             \"run\":{},\"differential\":{},\"generate\":{},\"findings\":{},\
             \"errors\":{},\"cancelled\":{},\"lat_p50\":{p50},\"lat_p95\":{p95},\
             \"lat_p99\":{p99}}}",
            self.seq,
            self.jobs,
            self.cycles,
            self.kinds[0],
            self.kinds[1],
            self.kinds[2],
            self.findings,
            self.errors,
            self.cancelled,
        );
        out
    }

    /// The same fields as [`FlightState::line`] rendered as a nested
    /// object for crash bundles (no `seq` bump — a bundle is a read).
    fn snapshot_object(&self) -> String {
        let p50 = bucket_quantile(&self.buckets, self.max_cycles, 50);
        let p95 = bucket_quantile(&self.buckets, self.max_cycles, 95);
        let p99 = bucket_quantile(&self.buckets, self.max_cycles, 99);
        format!(
            "{{\"jobs\":{},\"cycles\":{},\"run\":{},\"differential\":{},\"generate\":{},\
             \"findings\":{},\"errors\":{},\"cancelled\":{},\"lat_p50\":{p50},\
             \"lat_p95\":{p95},\"lat_p99\":{p99}}}",
            self.jobs,
            self.cycles,
            self.kinds[0],
            self.kinds[1],
            self.kinds[2],
            self.findings,
            self.errors,
            self.cancelled,
        )
    }
}

/// The recorder proper: deterministic state plus the heartbeat writer.
pub(crate) struct FlightRecorder {
    cfg: FlightConfig,
    state: Mutex<FlightState>,
    /// Formatted lines travel to the heartbeat thread over this channel;
    /// dropping the sender is the shutdown signal.
    tx: Mutex<Option<mpsc::Sender<String>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl FlightRecorder {
    pub(crate) fn new(cfg: FlightConfig) -> FlightRecorder {
        let (tx, rx) = mpsc::channel::<String>();
        let sink = cfg.sink.clone();
        let writer = std::thread::Builder::new()
            .name("serve-flight".into())
            .spawn(move || loop {
                match rx.recv_timeout(HEARTBEAT_TICK) {
                    Ok(line) => sink.write_line(&line),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // Idle tick: nothing queued; loop back to park.
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            })
            .expect("spawn flight heartbeat");
        FlightRecorder {
            cfg,
            state: Mutex::new(FlightState::default()),
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
        }
    }

    fn send_line(&self, line: String) {
        if let Some(tx) = self.tx.lock().unwrap().as_ref() {
            let _ = tx.send(line);
        }
    }

    /// Fold one delivered result into the recorder; called by the
    /// executing worker *before* the result is published, so at one
    /// worker the line sequence is fully ordered by job completion.
    pub(crate) fn note_completed(&self, spec: &JobSpec, result: &JobResult) {
        let cycles = match &result.result {
            Ok(out) => out.outcome.as_ref().map_or(0, |o| o.steps),
            Err(_) => 0,
        };
        let line = {
            let mut st = self.state.lock().unwrap();
            st.jobs += 1;
            st.cycles += cycles;
            let kind_ix = match spec.kind {
                JobKind::Run { .. } => 0,
                JobKind::Differential { .. } => 1,
                JobKind::Generate { .. } => 2,
            };
            st.kinds[kind_ix] += 1;
            match &result.result {
                Ok(out) => st.findings += out.findings.len() as u64,
                Err(JobError::Cancelled) => st.cancelled += 1,
                Err(_) => st.errors += 1,
            }
            let b = FlightState::bucket_of(cycles);
            st.buckets[b] += 1;
            st.max_cycles = st.max_cycles.max(cycles);
            if st.recent.len() == RECENT_JOBS {
                st.recent.pop_front();
            }
            st.recent.push_back(result.id);
            (self.cfg.interval > 0 && st.jobs % self.cfg.interval == 0).then(|| st.line())
        };
        if let Some(line) = line {
            self.send_line(line);
        }
    }

    /// Emit the final summary line and join the heartbeat thread.
    /// Idempotent — both `Pool::shutdown` and `Drop` call it.
    pub(crate) fn finish(&self) {
        let Some(tx) = self.tx.lock().unwrap().take() else { return };
        let final_line = self.state.lock().unwrap().line();
        let _ = tx.send(final_line);
        // Dropping the sender disconnects the channel after the queued
        // lines (including the final one) are drained.
        drop(tx);
        if let Some(writer) = self.writer.lock().unwrap().take() {
            let _ = writer.join();
        }
    }

    /// Write `crash-<tag>.json` into the configured crash directory.
    /// `failing` carries the spec/result pair of a dying job (absent for
    /// client-initiated bundles such as SIGINT).
    pub(crate) fn write_crash_bundle(
        &self,
        reason: &str,
        failing: Option<(&JobSpec, &JobResult)>,
    ) -> Option<PathBuf> {
        let dir = self.cfg.crash_dir.as_ref()?;
        let tag = match failing {
            Some((_, result)) => result.id.to_string(),
            None => sanitize(reason),
        };
        let path = dir.join(format!("crash-{tag}.json"));
        let body = self.render_bundle(reason, failing);
        if std::fs::create_dir_all(dir).is_err() {
            return None;
        }
        std::fs::write(&path, body).ok()?;
        Some(path)
    }

    fn render_bundle(&self, reason: &str, failing: Option<(&JobSpec, &JobResult)>) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{CRASH_SCHEMA}\",");
        let _ = writeln!(out, "  \"reason\": \"{}\",", escape(reason));
        match failing {
            Some((spec, result)) => {
                let error = match &result.result {
                    Err(e) => e.to_string(),
                    Ok(_) => String::new(),
                };
                let _ = writeln!(
                    out,
                    "  \"job\": {{ \"id\": {}, \"label\": \"{}\", \"worker\": {}, \
                     \"error\": \"{}\" }},",
                    result.id,
                    escape(&result.label),
                    result.worker,
                    escape(&error)
                );
                let _ = writeln!(out, "  \"spec\": {},", spec_json(spec));
                out.push_str("  \"metrics\": {");
                let mut first = true;
                for (name, value) in result.metrics.iter() {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "\n    \"{}\": {value}", escape(name));
                }
                if !first {
                    out.push_str("\n  ");
                }
                out.push_str("},\n");
            }
            None => {
                out.push_str("  \"job\": null,\n  \"spec\": null,\n  \"metrics\": {},\n");
            }
        }
        {
            let st = self.state.lock().unwrap();
            let _ = writeln!(out, "  \"snapshot\": {},", st.snapshot_object());
            let ids: Vec<String> = st.recent.iter().map(u64::to_string).collect();
            let _ = writeln!(out, "  \"recent_completed\": [{}],", ids.join(", "));
        }
        let log = tangled_telemetry::peek_trace();
        let skipped = log.events.len().saturating_sub(CRASH_TRACE_CAP);
        let _ = write!(
            out,
            "  \"trace\": {{ \"dropped\": {}, \"truncated\": {skipped}, \"events\": [",
            log.dropped
        );
        let mut first = true;
        for ev in &log.events[skipped..] {
            if !first {
                out.push(',');
            }
            first = false;
            let kind = match ev.kind {
                TraceKind::Complete => "X",
                TraceKind::Instant => "i",
            };
            let _ = write!(
                out,
                "\n    {{ \"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"{kind}\", \
                 \"ts\": {}, \"dur\": {}, \"tid\": {} }}",
                escape(ev.name),
                escape(ev.cat),
                ev.ts,
                ev.dur,
                ev.tid
            );
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("] }\n}\n");
        out
    }
}

/// Serialize a [`JobSpec`] for a crash bundle: kind-tagged fields plus
/// the oracle configuration, enough to re-submit the exact job.
fn spec_json(spec: &JobSpec) -> String {
    let mut out = String::from("{ ");
    match &spec.kind {
        JobKind::Run { words, model } => {
            let _ = write!(
                out,
                "\"kind\": \"run\", \"model\": \"{}\", \"words\": \"{}\"",
                escape(model),
                words_hex(words)
            );
        }
        JobKind::Differential { words } => {
            let _ = write!(out, "\"kind\": \"differential\", \"words\": \"{}\"", words_hex(words));
        }
        JobKind::Generate { seed, profile, len, crosscheck } => {
            let profile = match profile {
                Some(p) => format!("\"{p:?}\""),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "\"kind\": \"generate\", \"seed\": {seed}, \"profile\": {profile}, \
                 \"len\": {len}, \"crosscheck\": {crosscheck}"
            );
        }
    }
    let _ = write!(
        out,
        ", \"ways\": {}, \"constant_registers\": {}, \"backend\": \"{}\", \
         \"max_steps\": {}, \"label\": \"{}\" }}",
        spec.cfg.ways,
        spec.cfg.constant_registers,
        spec.cfg.backend.name(),
        spec.cfg.max_steps,
        escape(&spec.label)
    );
    out
}

fn words_hex(words: &[u16]) -> String {
    let mut out = String::with_capacity(words.len() * 4);
    for w in words {
        let _ = write!(out, "{w:04x}");
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Crash-file tags come from client-supplied reasons; keep them
/// filesystem-safe.
fn sanitize(reason: &str) -> String {
    let tag: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
        .collect();
    if tag.is_empty() { "client".to_string() } else { tag }
}
