#![warn(missing_docs)]
//! # tangled-serve — the simulator job-queue service layer
//!
//! Turns the one-shot simulators into a throughput machine: clients
//! submit typed jobs — an assembled program for one model, a program for
//! the full differential oracle, or a proggen seed to fuzz — and a
//! work-stealing pool of worker threads executes them on per-job
//! [`Machine`](tangled_sim::Machine)s built from the engine and Qat
//! storage registries, streaming back [`JobResult`]s.
//!
//! ```
//! use tangled_serve::{JobKind, JobSpec, Pool, ServeConfig};
//! use tangled_sim::difftest::DiffConfig;
//!
//! let pool = Pool::new(ServeConfig { workers: 2, ..Default::default() });
//! let words = tangled_asm::assemble("lex $1,21\nadd $1,$1\nsys\n").unwrap().words;
//! for _ in 0..4 {
//!     pool.submit(JobSpec::new(
//!         JobKind::Differential { words: words.clone() },
//!         DiffConfig::default(),
//!     ))
//!     .unwrap();
//! }
//! let results = pool.drain();
//! assert_eq!(results.len(), 4);
//! for r in &results {
//!     let out = r.result.as_ref().unwrap().outcome.as_ref().unwrap();
//!     assert_eq!(out.regs[1], 42);
//! }
//! ```
//!
//! ## Queue semantics
//!
//! `submit` applies back-pressure by blocking at `queue_cap` accepted-
//! but-unfinished jobs; `try_submit` returns [`SubmitError::Full`]
//! instead so interactive producers (the fuzzer's SIGINT-aware campaign
//! loop) can interleave submission with result collection. Every
//! accepted job yields exactly one result: worker panics become
//! [`JobError::Panic`] on that job alone, and [`Pool::discard_queued`]
//! completes not-yet-started jobs as [`JobError::Cancelled`] rather
//! than silently dropping them.
//!
//! ## Determinism
//!
//! Job execution touches no shared mutable state — each job builds its
//! own machine, and telemetry is captured per job with
//! [`tangled_telemetry::scoped`] — so a job set produces identical
//! per-job payloads at any worker count, and the merged metrics
//! snapshot ([`tangled_telemetry::Snapshot::merge_from`]) is invariant
//! under result arrival order. `tests/serve_determinism.rs` pins both
//! properties.

//!
//! ## Flight recorder
//!
//! With [`ServeConfig::flight`] set, the pool runs a [flight
//! recorder](flight): a heartbeat thread emits one deterministic
//! single-line JSON snapshot ([`LIVE_SCHEMA`]) every
//! [`FlightConfig::interval`] completed jobs (plus a final summary at
//! shutdown), per-`JobKind` latency histograms land in each job's
//! scoped metrics (`serve.job.cycles.<kind>`), pool pressure shows up
//! as `serve.pool.{queue_depth,in_flight,workers_busy}` gauges, and a
//! panicking job dumps a `crash-<jobid>.json` post-mortem
//! ([`CRASH_SCHEMA`]) with its spec, metrics, the span ring, and the
//! last few completed job ids.

mod flight;
mod job;
mod pool;

pub use flight::{FlightConfig, LineSink, CRASH_SCHEMA, LIVE_SCHEMA, RECENT_JOBS};
pub use job::{
    Finding, FindingKind, JobError, JobKind, JobOutput, JobResult, JobSpec, ModelResolver,
    run_model_once,
};
pub use pool::{Pool, ServeConfig, SubmitError};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tangled_sim::difftest::DiffConfig;

    fn add_prog() -> Vec<u16> {
        tangled_asm::assemble("lex $1,21\nadd $1,$1\nsys\n").unwrap().words
    }

    fn diff_job(words: Vec<u16>) -> JobSpec {
        JobSpec::new(JobKind::Differential { words }, DiffConfig::default())
    }

    #[test]
    fn run_job_executes_named_model() {
        let pool = Pool::new(ServeConfig::default());
        let id = pool
            .submit(JobSpec {
                kind: JobKind::Run { words: add_prog(), model: "pipeline-4-fw".into() },
                cfg: DiffConfig::default(),
                label: "smoke".into(),
            })
            .unwrap();
        let r = pool.recv_timeout(Duration::from_secs(30)).expect("result");
        assert_eq!(r.id, id);
        assert_eq!(r.label, "smoke");
        let out = r.result.unwrap();
        assert!(out.report.contains("cycles"), "{}", out.report);
        assert_eq!(out.outcome.unwrap().regs[1], 42);
    }

    #[test]
    fn unknown_model_is_a_typed_error_not_a_crash() {
        let pool = Pool::new(ServeConfig::default());
        pool.submit(JobSpec::new(
            JobKind::Run { words: add_prog(), model: "no-such-model".into() },
            DiffConfig::default(),
        ))
        .unwrap();
        let r = pool.recv_timeout(Duration::from_secs(30)).expect("result");
        assert_eq!(r.result.unwrap_err(), JobError::UnknownModel("no-such-model".into()));
        // The pool is still alive for the next job.
        pool.submit(diff_job(add_prog())).unwrap();
        assert!(pool.drain().iter().all(|r| r.id <= 1));
    }

    #[test]
    fn try_submit_applies_backpressure_at_queue_cap() {
        // One worker, capacity two: fill the queue with slow-ish jobs and
        // observe Full, then drain and observe acceptance again.
        let pool = Pool::new(ServeConfig { workers: 1, queue_cap: 2, ..Default::default() });
        let mut accepted = 0;
        let mut saw_full = false;
        for _ in 0..64 {
            match pool.try_submit(diff_job(add_prog())) {
                Ok(_) => accepted += 1,
                Err(SubmitError::Full) => {
                    saw_full = true;
                    let _ = pool.recv_timeout(Duration::from_secs(30));
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_full, "cap 2 never filled");
        let results = pool.drain();
        let total = accepted - results.len();
        // Results collected inline plus drained ones account for every
        // accepted job.
        assert!(total <= accepted);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn discard_queued_cancels_with_exact_accounting() {
        let pool = Pool::new(ServeConfig { workers: 1, queue_cap: 64, ..Default::default() });
        for _ in 0..16 {
            pool.submit(diff_job(add_prog())).unwrap();
        }
        pool.discard_queued();
        let results = pool.drain();
        assert_eq!(results.len(), 16);
        let cancelled =
            results.iter().filter(|r| r.result == Err(JobError::Cancelled)).count();
        let finished = results.len() - cancelled;
        assert!(finished >= 1 || cancelled >= 1);
        // Ids are dense: nothing dropped, nothing duplicated.
        for (ix, r) in results.iter().enumerate() {
            assert_eq!(r.id, ix as u64);
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let pool = Pool::new(ServeConfig::default());
        pool.submit(diff_job(add_prog())).unwrap();
        let results = pool.shutdown();
        assert_eq!(results.len(), 1);
        // `shutdown` consumed the pool; a fresh pool still accepts work,
        // which is the API contract the CLI relies on between campaigns.
        let pool = Pool::new(ServeConfig::default());
        assert!(pool.submit(diff_job(add_prog())).is_ok());
    }

    #[test]
    fn generate_job_reports_coverage_and_no_findings_on_clean_seed() {
        telemetry_on();
        let pool = Pool::new(ServeConfig { workers: 2, ..Default::default() });
        pool.submit(JobSpec::new(
            JobKind::Generate { seed: 7, profile: None, len: 40, crosscheck: true },
            DiffConfig::default(),
        ))
        .unwrap();
        let r = pool.recv_timeout(Duration::from_secs(60)).expect("result");
        let out = r.result.unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert!(out.outcome.is_some());
        let cov = out.coverage.unwrap();
        assert!(cov.generated.iter().sum::<u64>() > 0);
        // The job ran gate kernels, so its scoped metrics are non-empty.
        assert!(!r.metrics.is_empty());
    }

    fn telemetry_on() {
        tangled_telemetry::set_mode(tangled_telemetry::Mode::Counters);
    }

    #[test]
    fn flight_recorder_emits_live_lines_and_final_summary() {
        use std::sync::{Arc, Mutex};
        let buf = Arc::new(Mutex::new(Vec::new()));
        let pool = Pool::new(ServeConfig {
            workers: 1,
            flight: Some(FlightConfig {
                interval: 2,
                crash_dir: None,
                sink: LineSink::Buffer(Arc::clone(&buf)),
            }),
            ..Default::default()
        });
        for _ in 0..4 {
            pool.submit(diff_job(add_prog())).unwrap();
        }
        let results = pool.drain();
        assert_eq!(results.len(), 4);
        let _ = pool.shutdown();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Two periodic lines (after jobs 2 and 4) plus the final summary.
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines.iter().all(|l| l.contains("\"schema\":\"tangled-live/v1\"")), "{text}");
        assert!(lines[0].contains("\"seq\":1,\"jobs\":2,"), "{text}");
        assert!(lines[2].contains("\"seq\":3,\"jobs\":4,"), "{text}");
        assert!(lines[2].contains("\"differential\":4"), "{text}");
        // Simulated cycles accumulated and quantiles derived from them.
        assert!(!lines[2].contains("\"cycles\":0,"), "{text}");
        assert!(lines[2].contains("\"lat_p50\":"), "{text}");
    }
}
