//! The work-stealing worker pool.
//!
//! Topology is the classic crossbeam arrangement: one global
//! [`Injector`] that `submit` pushes to, one local FIFO [`Worker`] deque
//! per thread, and a [`Stealer`] onto every local deque so idle workers
//! can steal from busy ones. A worker looks for work local-first, then
//! batches from the injector, then steals from siblings; with nothing
//! anywhere it parks on a condvar with a 50 ms re-check so a lost wakeup
//! can only cost one tick, never a deadlock.
//!
//! ## Accounting invariant
//!
//! Every accepted submission produces **exactly one** [`JobResult`] —
//! panicking jobs yield [`JobError::Panic`], discarded jobs yield
//! [`JobError::Cancelled`]. `pending` counts accepted-but-undelivered
//! jobs and is decremented only *after* the result is visible in the
//! results queue, so [`Pool::drain`] observing `pending == 0` has seen
//! every result.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

use tangled_telemetry::Gauge;

use crate::flight::{FlightConfig, FlightRecorder};
use crate::job::{execute, JobError, JobResult, JobSpec, ModelResolver};

/// How long a worker with no visible work sleeps before re-checking the
/// queues. Bounds shutdown latency and missed-wakeup recovery.
const PARK_TICK: Duration = Duration::from_millis(50);

/// Jobs accepted but not yet picked up by a worker.
static QUEUE_DEPTH: Gauge = Gauge::new("serve.pool.queue_depth");
/// Jobs a worker has picked up and not yet delivered.
static IN_FLIGHT: Gauge = Gauge::new("serve.pool.in_flight");
/// Workers currently executing a real (non-cancelled) job — the
/// utilization gauge; its `.max` is peak concurrency.
static WORKERS_BUSY: Gauge = Gauge::new("serve.pool.workers_busy");

/// Pool construction knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Max accepted-but-unfinished jobs before [`Pool::submit`] blocks
    /// and [`Pool::try_submit`] reports [`SubmitError::Full`].
    pub queue_cap: usize,
    /// Model-name resolver for run jobs (tests inject synthetic cores
    /// here; production uses the engine registry).
    pub resolve_model: ModelResolver,
    /// Flight-recorder configuration: live snapshot lines and crash
    /// bundles. `None` (the default) records nothing.
    pub flight: Option<FlightConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_cap: 256,
            resolve_model: tangled_sim::engine::model,
            flight: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("workers", &self.workers)
            .field("queue_cap", &self.queue_cap)
            .field("flight", &self.flight)
            .finish_non_exhaustive()
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The pool is at [`ServeConfig::queue_cap`] (back-pressure; only
    /// [`Pool::try_submit`] reports this — `submit` blocks instead).
    Full,
    /// [`Pool::shutdown`] has begun; no new work is accepted.
    ShutDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "job queue full"),
            SubmitError::ShutDown => write!(f, "pool is shutting down"),
        }
    }
}

struct Job {
    id: u64,
    spec: JobSpec,
}

#[derive(Default)]
struct State {
    /// Accepted jobs whose result has not yet been delivered.
    pending: usize,
    /// Monotonic id source for accepted jobs.
    next_id: u64,
    /// Submissions are rejected and workers exit once idle.
    shutdown: bool,
    /// Queued (not yet started) jobs complete as [`JobError::Cancelled`].
    discard: bool,
}

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    resolve: ModelResolver,
    flight: Option<FlightRecorder>,
    state: Mutex<State>,
    /// Workers park here; signalled on submit and shutdown.
    work_cv: Condvar,
    /// Blocked submitters park here; signalled when `pending` drops.
    space_cv: Condvar,
    results: Mutex<VecDeque<JobResult>>,
    /// Consumers park here; signalled on every delivered result.
    results_cv: Condvar,
}

impl Shared {
    fn queues_empty(&self) -> bool {
        self.injector.is_empty() && self.stealers.iter().all(|s| s.is_empty())
    }

    /// Publish a result and release one unit of queue capacity. The
    /// ordering (result first, `pending` decrement second) is what makes
    /// `pending == 0` mean "all results visible".
    fn deliver(&self, result: JobResult) {
        self.results.lock().unwrap().push_back(result);
        self.results_cv.notify_all();
        self.state.lock().unwrap().pending -= 1;
        IN_FLIGHT.dec();
        self.space_cv.notify_all();
    }
}

/// A running worker pool over simulator jobs. See the crate docs for the
/// full lifecycle; dropping the pool performs a graceful [`Pool::shutdown`].
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    queue_cap: usize,
}

impl Pool {
    /// Spawn `cfg.workers` threads and return the handle used to submit
    /// jobs and collect results.
    pub fn new(cfg: ServeConfig) -> Pool {
        let workers = cfg.workers.max(1);
        let locals: Vec<Worker<Job>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers: locals.iter().map(Worker::stealer).collect(),
            resolve: cfg.resolve_model,
            flight: cfg.flight.map(FlightRecorder::new),
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            results: Mutex::new(VecDeque::new()),
            results_cv: Condvar::new(),
        });
        let handles = locals
            .into_iter()
            .enumerate()
            .map(|(ix, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{ix}"))
                    .spawn(move || worker_loop(ix, &shared, &local))
                    .expect("spawn serve worker")
            })
            .collect();
        Pool { shared, handles, queue_cap: cfg.queue_cap.max(1) }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Accepted jobs whose results have not been collected yet.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().unwrap().pending
    }

    /// Submit a job, blocking while the pool is at capacity.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        let mut st = self.shared.state.lock().unwrap();
        while !st.shutdown && st.pending >= self.queue_cap {
            st = self.shared.space_cv.wait(st).unwrap();
        }
        self.accept(st, spec)
    }

    /// Submit a job without blocking; [`SubmitError::Full`] applies
    /// back-pressure to the producer.
    pub fn try_submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        let st = self.shared.state.lock().unwrap();
        if !st.shutdown && st.pending >= self.queue_cap {
            return Err(SubmitError::Full);
        }
        self.accept(st, spec)
    }

    fn accept(
        &self,
        mut st: std::sync::MutexGuard<'_, State>,
        spec: JobSpec,
    ) -> Result<u64, SubmitError> {
        if st.shutdown {
            return Err(SubmitError::ShutDown);
        }
        st.pending += 1;
        let id = st.next_id;
        st.next_id += 1;
        // Push under the state lock (lock order state -> injector, same as
        // the workers' exit check) so a racing shutdown can never observe
        // `pending > 0` with the job not yet visible in a queue.
        self.shared.injector.push(Job { id, spec });
        QUEUE_DEPTH.inc();
        drop(st);
        self.shared.work_cv.notify_one();
        Ok(id)
    }

    /// Take one finished result if any is ready (non-blocking).
    pub fn poll(&self) -> Option<JobResult> {
        self.shared.results.lock().unwrap().pop_front()
    }

    /// Take one finished result, waiting up to `timeout` for it.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<JobResult> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.results.lock().unwrap();
        loop {
            if let Some(r) = q.pop_front() {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.shared.results_cv.wait_timeout(q, deadline - now).unwrap();
            q = guard;
        }
    }

    /// Block until every accepted job has delivered a result, returning
    /// all uncollected results in submission (id) order.
    pub fn drain(&self) -> Vec<JobResult> {
        let mut out = Vec::new();
        loop {
            let pending = self.shared.state.lock().unwrap().pending;
            out.extend(self.shared.results.lock().unwrap().drain(..));
            if pending == 0 {
                break;
            }
            let q = self.shared.results.lock().unwrap();
            if q.is_empty() {
                let _ = self.shared.results_cv.wait_timeout(q, PARK_TICK).unwrap();
            }
        }
        out.sort_by_key(|r| r.id);
        out
    }

    /// Mark all *queued* (not yet started) jobs for cancellation: workers
    /// complete them instantly as [`JobError::Cancelled`] so accounting
    /// stays exact. Jobs already executing finish normally — this is the
    /// SIGINT path: stop starting work, keep every result.
    pub fn discard_queued(&self) {
        self.shared.state.lock().unwrap().discard = true;
        self.shared.work_cv.notify_all();
    }

    /// Graceful shutdown: reject new submissions, let workers drain the
    /// queue (or cancel it, after [`Pool::discard_queued`]), and join
    /// them. Returns any uncollected results. Also performed by `Drop`.
    pub fn shutdown(mut self) -> Vec<JobResult> {
        self.begin_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(flight) = &self.shared.flight {
            flight.finish();
        }
        let mut out: Vec<JobResult> =
            self.shared.results.lock().unwrap().drain(..).collect();
        out.sort_by_key(|r| r.id);
        out
    }

    /// Force a post-mortem bundle right now (`crash-<reason>.json`) with
    /// the recorder's current snapshot, recent job ids, and the span
    /// ring — no failing job attached. This is the client-interrupt
    /// (SIGINT) path. Returns the written path, or `None` when no
    /// flight recorder / crash directory is configured or the write
    /// failed.
    pub fn write_crash_bundle(&self, reason: &str) -> Option<std::path::PathBuf> {
        self.shared.flight.as_ref()?.write_crash_bundle(reason, None)
    }

    fn begin_shutdown(&self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(flight) = &self.shared.flight {
            flight.finish();
        }
    }
}

/// Local-first, then injector batch, then sibling steal — retrying while
/// any source reports contention.
fn find_job(shared: &Shared, local: &Worker<Job>) -> Option<Job> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            Steal::Success(job) => return Some(job),
            Steal::Empty => break,
            Steal::Retry => std::hint::spin_loop(),
        }
    }
    let mut contended = true;
    while contended {
        contended = false;
        for stealer in &shared.stealers {
            match stealer.steal() {
                Steal::Success(job) => return Some(job),
                Steal::Empty => {}
                Steal::Retry => contended = true,
            }
        }
    }
    None
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(ix: usize, shared: &Shared, local: &Worker<Job>) {
    loop {
        if let Some(job) = find_job(shared, local) {
            QUEUE_DEPTH.dec();
            IN_FLIGHT.inc();
            let discard = shared.state.lock().unwrap().discard;
            let result = if discard {
                JobResult {
                    id: job.id,
                    label: job.spec.label.clone(),
                    worker: ix,
                    metrics: tangled_telemetry::Snapshot::default(),
                    result: Err(JobError::Cancelled),
                }
            } else {
                // The scope captures only this thread's telemetry; the
                // panic is caught *inside* it so a dying job still
                // reports the metrics it recorded before the panic.
                WORKERS_BUSY.inc();
                let (caught, metrics) = tangled_telemetry::scoped(|| {
                    std::panic::catch_unwind(AssertUnwindSafe(|| {
                        execute(&job.spec, shared.resolve)
                    }))
                });
                WORKERS_BUSY.dec();
                JobResult {
                    id: job.id,
                    label: job.spec.label.clone(),
                    worker: ix,
                    metrics,
                    result: match caught {
                        Ok(r) => r,
                        Err(payload) => Err(JobError::Panic(panic_message(payload))),
                    },
                }
            };
            if let Some(flight) = &shared.flight {
                // A panicking job writes its post-mortem before the
                // result is published (the bundle's recent-completed
                // list therefore excludes the dying job itself).
                if matches!(result.result, Err(JobError::Panic(_))) {
                    let _ = flight.write_crash_bundle("panic", Some((&job.spec, &result)));
                }
                flight.note_completed(&job.spec, &result);
            }
            shared.deliver(result);
            continue;
        }
        let st = shared.state.lock().unwrap();
        if st.shutdown && shared.queues_empty() {
            return;
        }
        // Parked until new work or shutdown; the tick re-checks in case a
        // wakeup raced the empty-queue observation above.
        let _ = shared.work_cv.wait_timeout(st, PARK_TICK).unwrap();
    }
}
