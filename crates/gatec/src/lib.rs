#![warn(missing_docs)]
//! # gatec — the gate-level compiler for Tangled/Qat
//!
//! The paper's Figure 10 program was produced by "the software-only PBP
//! implementation … slightly modified to output the gate-level operations
//! rather than to perform them". This crate rebuilds that pipeline as a
//! proper compiler:
//!
//! 1. **Build**: a word-level [`PintProgram`] (same operations as the
//!    `pbp` crate's pint API) records a gate **netlist** instead of
//!    evaluating — Hadamard leaves, constants, and `AND`/`OR`/`XOR`/`NOT`
//!    over single pbits.
//! 2. **Optimize**: hash-consing (CSE), algebraic constant folding, and
//!    dead-gate elimination — the aggressive bit-level optimization the
//!    paper's ref \[2\] ("How Low Can You Go?") argues can cut gate counts
//!    by orders of magnitude. Folding can be disabled to measure exactly
//!    how much it buys ([`Netlist::new_unoptimized`]).
//! 3. **Allocate**: Qat register allocation, either the paper-faithful
//!    [`AllocStrategy::GreedyFresh`] ("the register allocation scheme
//!    greedily uses registers so that every intermediate computation's
//!    value is still available … at the end") or a last-use
//!    [`AllocStrategy::LinearScanReuse`] allocator showing "far fewer
//!    registers … could have been used".
//! 4. **Emit**: Tangled/Qat assembly. `NOT` nodes emit the paper's own
//!    copy-then-invert idiom (`or @d,@s,@s ; not @d` — Figure 10's
//!    `or @80,@79,@79`); with constant-register mode the Hadamard and
//!    constant leaves cost zero instructions.
//!
//! [`factor::compile_factoring`] assembles the complete prime-factoring
//! program for any small modulus, including the Figure-10-style `next`/
//! `and` read-out tail, and [`factor::FIGURE_10`] is the paper's program
//! verbatim for conformance testing.

pub mod builder;
pub mod emit;
pub mod factor;
pub mod netlist;
pub mod regalloc;
pub mod verilog;

pub use builder::{GPint, PintProgram};
pub use emit::{emit_asm, EmitOptions, EmitResult};
pub use netlist::{Gate, Netlist, NodeId};
pub use regalloc::{allocate, AllocStrategy, Allocation, RegAllocError};
pub use netlist::equivalent;
pub use verilog::to_verilog;

/// End-to-end convenience: optimize, allocate, and emit a program.
pub struct Compiler {
    /// Register-allocation strategy.
    pub strategy: AllocStrategy,
    /// Emission options (constant-register mode etc.).
    pub emit: EmitOptions,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler { strategy: AllocStrategy::LinearScanReuse, emit: EmitOptions::default() }
    }
}

impl Compiler {
    /// Compile a finished program to assembly text plus output-register map.
    pub fn compile(&self, prog: &PintProgram) -> Result<EmitResult, RegAllocError> {
        let (nl, outputs) = prog.optimized();
        let alloc = allocate(&nl, &outputs, self.strategy, &self.emit)?;
        Ok(emit_asm(&nl, &outputs, &alloc, &self.emit))
    }
}
