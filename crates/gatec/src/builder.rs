//! Word-level program builder: the pint API, recording gates.
//!
//! [`PintProgram`] mirrors the `pbp` crate's word-level operations but
//! accumulates a netlist instead of evaluating — the "slightly modified to
//! output the gate-level operations rather than to perform them" step of
//! §4.1. Arithmetic decompositions (ripple-carry add, shift-and-add
//! multiply, XNOR-AND equality) are deliberately identical to `pbp`'s, so
//! the two paths can be differentially tested.

use crate::netlist::{Netlist, NodeId};

/// A gate-level pattern integer: little-endian pbit nodes.
#[derive(Debug, Clone)]
pub struct GPint {
    bits: Vec<NodeId>,
}

impl GPint {
    /// Width in pbits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Node of bit `i`.
    pub fn bit(&self, i: usize) -> NodeId {
        self.bits[i]
    }

    /// All bit nodes, little-endian.
    pub fn bits(&self) -> &[NodeId] {
        &self.bits
    }
}

/// A word-level program under construction.
#[derive(Debug, Clone, Default)]
pub struct PintProgram {
    nl: Netlist,
    outputs: Vec<(String, NodeId)>,
    next_dim: u8,
}

impl PintProgram {
    /// Optimizing builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder without CSE/folding (ref \[2\] ablation baseline).
    pub fn new_unoptimized() -> Self {
        PintProgram { nl: Netlist::new_unoptimized(), outputs: Vec::new(), next_dim: 0 }
    }

    /// Direct netlist access.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Named outputs registered so far.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Mark a node as a program output.
    pub fn output(&mut self, name: &str, node: NodeId) {
        self.outputs.push((name.to_string(), node));
    }

    /// Dead-gate-eliminate with respect to the outputs; returns the pruned
    /// netlist and remapped outputs.
    pub fn optimized(&self) -> (Netlist, Vec<(String, NodeId)>) {
        let roots: Vec<NodeId> = self.outputs.iter().map(|(_, n)| *n).collect();
        let (nl, new_roots) = self.nl.eliminate_dead(&roots);
        let outputs = self
            .outputs
            .iter()
            .zip(new_roots)
            .map(|((name, _), n)| (name.clone(), n))
            .collect();
        (nl, outputs)
    }

    /// Constant `value` as a `width`-bit pint.
    pub fn mk(&mut self, width: usize, value: u64) -> GPint {
        let bits = (0..width)
            .map(|i| self.nl.constant((value >> i) & 1 != 0))
            .collect();
        GPint { bits }
    }

    /// Hadamard superposition over the channel dimensions named by `mask`
    /// (the Figure 9 convention).
    pub fn h(&mut self, width: usize, mask: u16) -> GPint {
        let dims: Vec<u8> = (0..16u8).filter(|k| (mask >> k) & 1 != 0).collect();
        assert_eq!(dims.len(), width, "mask must have exactly `width` set bits");
        let bits = dims.into_iter().map(|k| self.nl.had(k)).collect();
        GPint { bits }
    }

    /// Hadamard superposition over the next `width` fresh dimensions.
    pub fn h_auto(&mut self, width: usize) -> GPint {
        assert!(self.next_dim as usize + width <= 16, "out of entanglement dimensions");
        let first = self.next_dim;
        self.next_dim += width as u8;
        let bits = (first..first + width as u8).map(|k| self.nl.had(k)).collect();
        GPint { bits }
    }

    /// Zero-extend or truncate.
    pub fn resize(&mut self, a: &GPint, width: usize) -> GPint {
        let mut bits = a.bits.clone();
        while bits.len() < width {
            bits.push(self.nl.constant(false));
        }
        bits.truncate(width);
        GPint { bits }
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: &GPint, b: &GPint) -> GPint {
        assert_eq!(a.width(), b.width());
        let bits = a.bits.iter().zip(&b.bits).map(|(&x, &y)| self.nl.and(x, y)).collect();
        GPint { bits }
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: &GPint, b: &GPint) -> GPint {
        assert_eq!(a.width(), b.width());
        let bits = a.bits.iter().zip(&b.bits).map(|(&x, &y)| self.nl.xor(x, y)).collect();
        GPint { bits }
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: &GPint) -> GPint {
        let bits = a.bits.iter().map(|&x| self.nl.not(x)).collect();
        GPint { bits }
    }

    /// Ripple-carry addition (result one bit wider).
    pub fn add(&mut self, a: &GPint, b: &GPint) -> GPint {
        let w = a.width().max(b.width());
        let a = self.resize(a, w);
        let b = self.resize(b, w);
        let mut carry = self.nl.constant(false);
        let mut bits = Vec::with_capacity(w + 1);
        for i in 0..w {
            let (x, y) = (a.bits[i], b.bits[i]);
            let xy = self.nl.xor(x, y);
            let sum = self.nl.xor(xy, carry);
            let and_xy = self.nl.and(x, y);
            let and_cxy = self.nl.and(carry, xy);
            carry = self.nl.or(and_xy, and_cxy);
            bits.push(sum);
        }
        bits.push(carry);
        GPint { bits }
    }

    /// Shift-and-add multiplication (exact, width `wa + wb`).
    pub fn mul(&mut self, a: &GPint, b: &GPint) -> GPint {
        let wr = a.width() + b.width();
        let mut acc = self.mk(wr, 0);
        for i in 0..b.width() {
            let bi = b.bits[i];
            let masked: Vec<NodeId> = a.bits.iter().map(|&x| self.nl.and(x, bi)).collect();
            let mut shifted: Vec<NodeId> = (0..i).map(|_| self.nl.constant(false)).collect();
            shifted.extend(masked);
            let partial = self.resize(&GPint { bits: shifted }, wr);
            let sum = self.add(&acc, &partial);
            acc = self.resize(&sum, wr);
        }
        acc
    }

    /// Equality → single pbit node.
    pub fn eq(&mut self, a: &GPint, b: &GPint) -> NodeId {
        let w = a.width().max(b.width());
        let a = self.resize(a, w);
        let b = self.resize(b, w);
        let mut acc = self.nl.constant(true);
        for i in 0..w {
            let x = self.nl.xor(a.bits[i], b.bits[i]);
            let eq = self.nl.not(x);
            acc = self.nl.and(acc, eq);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_ops_evaluate_correctly() {
        // Build (b + 3) on 4-bit b = H over dims 0..3; check via AoB eval.
        let mut p = PintProgram::new();
        let b = p.h(4, 0x0F);
        let three = p.mk(4, 3);
        let s = p.add(&b, &three);
        let roots: Vec<NodeId> = s.bits().to_vec();
        let vals = p.netlist().evaluate_aob(8, &roots);
        for e in 0..256u64 {
            let mut got = 0u64;
            for (i, v) in vals.iter().enumerate() {
                got |= (v.get(e) as u64) << i;
            }
            assert_eq!(got, (e & 0xF) + 3, "e={e}");
        }
    }

    #[test]
    fn mul_and_eq_match_semantics() {
        let mut p = PintProgram::new();
        let b = p.h(4, 0x0F);
        let c = p.h(4, 0xF0);
        let d = p.mul(&b, &c);
        let fifteen = p.mk(4, 15);
        let e = p.eq(&d, &fifteen);
        let vals = p.netlist().evaluate_aob(8, &[e]);
        for ch in 0..256u64 {
            let want = (ch & 0xF) * (ch >> 4) == 15;
            assert_eq!(vals[0].get(ch), want, "ch={ch}");
        }
    }

    #[test]
    fn optimizer_shrinks_gate_count() {
        // The same program built with and without optimization.
        let build = |mut p: PintProgram| {
            let b = p.h(4, 0x0F);
            let c = p.h(4, 0xF0);
            let d = p.mul(&b, &c);
            let n = p.mk(4, 15);
            let e = p.eq(&d, &n);
            p.output("e", e);
            let (nl, _) = p.optimized();
            nl.len()
        };
        let opt = build(PintProgram::new());
        let unopt = build(PintProgram::new_unoptimized());
        assert!(
            opt * 2 < unopt,
            "optimization should at least halve the netlist: {opt} vs {unopt}"
        );
    }

    #[test]
    fn optimized_and_unoptimized_agree_semantically() {
        let build = |mut p: PintProgram| {
            let b = p.h(3, 0b111);
            let c = p.h(3, 0b111000);
            let s = p.add(&b, &c);
            let roots: Vec<NodeId> = s.bits().to_vec();
            p.netlist().evaluate_aob(6, &roots)
        };
        assert_eq!(build(PintProgram::new()), build(PintProgram::new_unoptimized()));
    }

    #[test]
    fn h_auto_allocates_disjoint_dims() {
        let mut p = PintProgram::new();
        let a = p.h_auto(4);
        let b = p.h_auto(4);
        let ra: Vec<NodeId> = a.bits().to_vec();
        let rb: Vec<NodeId> = b.bits().to_vec();
        // Evaluate: a tracks low nibble, b high nibble.
        let va = p.netlist().evaluate_aob(8, &ra);
        let vb = p.netlist().evaluate_aob(8, &rb);
        for e in 0..256u64 {
            let x: u64 = va.iter().enumerate().map(|(i, v)| (v.get(e) as u64) << i).sum();
            let y: u64 = vb.iter().enumerate().map(|(i, v)| (v.get(e) as u64) << i).sum();
            assert_eq!(x, e & 0xF);
            assert_eq!(y, e >> 4);
        }
    }
}
