//! Assembly emission from an allocated netlist.

use crate::netlist::{Gate, Netlist, NodeId};
use crate::regalloc::Allocation;

/// Emission options.
#[derive(Debug, Clone, Copy)]
pub struct EmitOptions {
    /// §5 constant-register mode: `@0 = 0`, `@1 = 1`, `@2+k = H(k)` are
    /// pre-initialized; leaves emit no instructions.
    pub constant_registers: bool,
    /// Entanglement degree of the target machine (bounds the reserved
    /// Hadamard bank in constant-register mode).
    pub ways: u32,
}

impl Default for EmitOptions {
    fn default() -> Self {
        EmitOptions { constant_registers: false, ways: 16 }
    }
}

/// Emission output.
#[derive(Debug, Clone)]
pub struct EmitResult {
    /// Assembly text (no trailing measurement code; see `factor`).
    pub asm: String,
    /// Output name → Qat register holding it at program end.
    pub output_regs: Vec<(String, u8)>,
    /// Qat instructions emitted.
    pub qat_insns: usize,
}

/// Emit assembly for an allocated netlist.
pub fn emit_asm(
    nl: &Netlist,
    outputs: &[(String, NodeId)],
    alloc: &Allocation,
    opts: &EmitOptions,
) -> EmitResult {
    let mut asm = String::new();
    let mut count = 0usize;
    let r = |n: NodeId| alloc.reg[n.0 as usize];
    for (i, g) in nl.nodes().iter().enumerate() {
        if alloc.is_reserved[i] {
            continue; // constant-register leaf: no code
        }
        let d = alloc.reg[i];
        match *g {
            Gate::Const(false) => {
                asm.push_str(&format!("zero @{d}\n"));
                count += 1;
            }
            Gate::Const(true) => {
                asm.push_str(&format!("one @{d}\n"));
                count += 1;
            }
            Gate::Had(k) => {
                if (k as u32) < opts.ways {
                    asm.push_str(&format!("had @{d},{k}\n"));
                } else {
                    // H(k) beyond the machine degree is all-zeros.
                    asm.push_str(&format!("zero @{d}\n"));
                }
                count += 1;
            }
            Gate::And(a, b) => {
                asm.push_str(&format!("and @{d},@{},@{}\n", r(a), r(b)));
                count += 1;
            }
            Gate::Or(a, b) => {
                asm.push_str(&format!("or @{d},@{},@{}\n", r(a), r(b)));
                count += 1;
            }
            Gate::Xor(a, b) => {
                asm.push_str(&format!("xor @{d},@{},@{}\n", r(a), r(b)));
                count += 1;
            }
            Gate::Not(a) => {
                let s = r(a);
                if s == d {
                    // Input dies here: invert in place.
                    asm.push_str(&format!("not @{d}\n"));
                    count += 1;
                } else {
                    // The paper's own copy-then-invert idiom
                    // (Figure 10: `or @80,@79,@79` then `not @80`).
                    asm.push_str(&format!("or @{d},@{s},@{s}\nnot @{d}\n"));
                    count += 2;
                }
            }
        }
    }
    let output_regs = outputs.iter().map(|(n, o)| (n.clone(), r(*o))).collect();
    EmitResult { asm, output_regs, qat_insns: count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PintProgram;
    use crate::regalloc::{allocate, AllocStrategy};

    fn simple_program() -> PintProgram {
        let mut p = PintProgram::new();
        let a = p.h(2, 0b01 | 0b10);
        let b = p.mk(2, 3);
        let e = p.eq(&a, &b);
        p.output("e", e);
        p
    }

    #[test]
    fn emits_assemblable_text() {
        let p = simple_program();
        let (nl, outs) = p.optimized();
        let opts = EmitOptions::default();
        let alloc = allocate(&nl, &outs, AllocStrategy::GreedyFresh, &opts).unwrap();
        let out = emit_asm(&nl, &outs, &alloc, &opts);
        // Must assemble cleanly.
        let img = tangled_asm::assemble(&out.asm).expect("emitted asm must assemble");
        assert!(!img.words.is_empty());
        assert_eq!(out.output_regs.len(), 1);
    }

    #[test]
    fn constant_register_mode_emits_fewer_instructions() {
        let p = simple_program();
        let (nl, outs) = p.optimized();
        let base_opts = EmitOptions::default();
        let cr_opts = EmitOptions { constant_registers: true, ways: 8 };
        let a1 = allocate(&nl, &outs, AllocStrategy::LinearScanReuse, &base_opts).unwrap();
        let a2 = allocate(&nl, &outs, AllocStrategy::LinearScanReuse, &cr_opts).unwrap();
        let e1 = emit_asm(&nl, &outs, &a1, &base_opts);
        let e2 = emit_asm(&nl, &outs, &a2, &cr_opts);
        assert!(e2.qat_insns < e1.qat_insns, "{} vs {}", e2.qat_insns, e1.qat_insns);
        assert!(!e2.asm.contains("had"));
    }

    #[test]
    fn not_uses_in_place_form_when_register_reused() {
        // With linear scan, a NOT whose input dies gets the in-place form.
        let mut p = PintProgram::new();
        let a = p.h(1, 0b1);
        let n = p.not(&a);
        p.output("n", n.bit(0));
        let (nl, outs) = p.optimized();
        let opts = EmitOptions::default();
        let alloc = allocate(&nl, &outs, AllocStrategy::LinearScanReuse, &opts).unwrap();
        let out = emit_asm(&nl, &outs, &alloc, &opts);
        assert!(out.asm.contains("not @"));
        assert!(!out.asm.contains("or @"), "no copy needed:\n{}", out.asm);
        // Greedy keeps the intermediate, so it must copy first.
        let g = allocate(&nl, &outs, AllocStrategy::GreedyFresh, &opts).unwrap();
        let gout = emit_asm(&nl, &outs, &g, &opts);
        assert!(gout.asm.contains("or @"), "{}", gout.asm);
    }
}
