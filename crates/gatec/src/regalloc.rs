//! Qat register allocation for gate netlists.
//!
//! The paper's generator "greedily uses registers so that every
//! intermediate computation's value is still available in a register at
//! the end of the computation" — [`AllocStrategy::GreedyFresh`]. Its §4.2
//! remark that "far fewer registers, and fewer instructions, could have
//! been used" is realized by [`AllocStrategy::LinearScanReuse`], a
//! last-use free-list allocator.

use crate::emit::EmitOptions;
use crate::netlist::{Gate, Netlist, NodeId};

/// Allocation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocStrategy {
    /// Paper-faithful: every node gets a fresh register; all intermediates
    /// survive.
    GreedyFresh,
    /// Last-use linear scan with register reuse.
    LinearScanReuse,
}

/// Allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegAllocError {
    /// The program needs more than the 256 (minus reserved) Qat registers.
    OutOfRegisters {
        /// Node that could not be assigned.
        at: NodeId,
        /// Registers available.
        available: u16,
    },
}

impl std::fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegAllocError::OutOfRegisters { at, available } => write!(
                f,
                "out of Qat registers at node {at:?} ({available} available); \
                 try AllocStrategy::LinearScanReuse"
            ),
        }
    }
}

impl std::error::Error for RegAllocError {}

/// Result of allocation: one register per node.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Register number per node id.
    pub reg: Vec<u8>,
    /// Highest register number used + 1 (excluding reserved constants).
    pub regs_used: u16,
    /// Nodes that are reserved-constant references (emit no code).
    pub is_reserved: Vec<bool>,
}

fn leaf_reserved(g: Gate, opts: &EmitOptions) -> Option<u8> {
    if !opts.constant_registers {
        return None;
    }
    match g {
        Gate::Const(false) => Some(0),
        Gate::Const(true) => Some(1),
        Gate::Had(k) if (k as u32) < opts.ways => Some(2 + k),
        // H(k) beyond the machine's entanglement degree is all-zeros.
        Gate::Had(_) => Some(0),
        _ => None,
    }
}

/// Allocate registers for a netlist whose roots are `outputs`.
pub fn allocate(
    nl: &Netlist,
    outputs: &[(String, NodeId)],
    strategy: AllocStrategy,
    opts: &EmitOptions,
) -> Result<Allocation, RegAllocError> {
    let n = nl.len();
    let first_free: u16 = if opts.constant_registers { 2 + opts.ways as u16 } else { 0 };
    let mut reg = vec![0u8; n];
    let mut is_reserved = vec![false; n];

    // Last-use indices (outputs live forever).
    let mut last_use = vec![0usize; n];
    for (i, g) in nl.nodes().iter().enumerate() {
        let mut touch = |x: NodeId| last_use[x.0 as usize] = i;
        match *g {
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                touch(a);
                touch(b);
            }
            Gate::Not(a) => touch(a),
            _ => {}
        }
    }
    for (_, o) in outputs {
        last_use[o.0 as usize] = usize::MAX;
    }

    match strategy {
        AllocStrategy::GreedyFresh => {
            let mut next = first_free;
            for (i, g) in nl.nodes().iter().enumerate() {
                if let Some(r) = leaf_reserved(*g, opts) {
                    reg[i] = r;
                    is_reserved[i] = true;
                    continue;
                }
                if next > 255 {
                    return Err(RegAllocError::OutOfRegisters {
                        at: NodeId(i as u32),
                        available: 256 - first_free,
                    });
                }
                reg[i] = next as u8;
                next += 1;
            }
            Ok(Allocation { reg, regs_used: next - first_free, is_reserved })
        }
        AllocStrategy::LinearScanReuse => {
            // Free list of reusable registers; expire intervals whose last
            // use is at or before the current node (a consumer may reuse
            // an input's register — Qat reads before it writes).
            let mut free: Vec<u8> = Vec::new();
            let mut next = first_free;
            let mut active: Vec<(usize, u8)> = Vec::new(); // (last_use, reg)
            let mut peak = 0u16;
            for (i, g) in nl.nodes().iter().enumerate() {
                if let Some(r) = leaf_reserved(*g, opts) {
                    reg[i] = r;
                    is_reserved[i] = true;
                    continue;
                }
                active.retain(|&(lu, r)| {
                    if lu <= i {
                        free.push(r);
                        false
                    } else {
                        true
                    }
                });
                let r = if let Some(r) = free.pop() {
                    r
                } else {
                    if next > 255 {
                        return Err(RegAllocError::OutOfRegisters {
                            at: NodeId(i as u32),
                            available: 256 - first_free,
                        });
                    }
                    let r = next as u8;
                    next += 1;
                    r
                };
                reg[i] = r;
                if last_use[i] > i {
                    active.push((last_use[i], r));
                }
                peak = peak.max(next - first_free);
            }
            Ok(Allocation { reg, regs_used: peak, is_reserved })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PintProgram;

    fn factoring_netlist() -> (Netlist, Vec<(String, NodeId)>) {
        let mut p = PintProgram::new();
        let b = p.h(4, 0x0F);
        let c = p.h(4, 0xF0);
        let d = p.mul(&b, &c);
        let n = p.mk(4, 15);
        let e = p.eq(&d, &n);
        p.output("e", e);
        p.optimized()
    }

    #[test]
    fn greedy_uses_one_register_per_node() {
        let (nl, outs) = factoring_netlist();
        let opts = EmitOptions::default();
        let a = allocate(&nl, &outs, AllocStrategy::GreedyFresh, &opts).unwrap();
        assert_eq!(a.regs_used as usize, nl.len());
        // All registers distinct.
        let mut seen = std::collections::HashSet::new();
        for (i, &r) in a.reg.iter().enumerate() {
            assert!(seen.insert(r), "node {i} shares register {r}");
        }
    }

    #[test]
    fn linear_scan_uses_far_fewer() {
        // §4.2: "far fewer registers … could have been used".
        let (nl, outs) = factoring_netlist();
        let opts = EmitOptions::default();
        let greedy = allocate(&nl, &outs, AllocStrategy::GreedyFresh, &opts).unwrap();
        let scan = allocate(&nl, &outs, AllocStrategy::LinearScanReuse, &opts).unwrap();
        assert!(
            scan.regs_used * 3 < greedy.regs_used,
            "reuse {} vs greedy {}",
            scan.regs_used,
            greedy.regs_used
        );
    }

    #[test]
    fn linear_scan_never_clobbers_live_values() {
        // Validity: no two overlapping live ranges share a register.
        let (nl, outs) = factoring_netlist();
        let opts = EmitOptions::default();
        let a = allocate(&nl, &outs, AllocStrategy::LinearScanReuse, &opts).unwrap();
        // Check by abstract interpretation: evaluate with registers and
        // compare against direct node evaluation.
        let roots: Vec<NodeId> = (0..nl.len() as u32).map(NodeId).collect();
        let direct = nl.evaluate_aob(8, &roots);
        let mut regs = vec![pbp_aob::Aob::zeros(8); 256];
        for (i, g) in nl.nodes().iter().enumerate() {
            let v = match *g {
                Gate::Const(false) => pbp_aob::Aob::zeros(8),
                Gate::Const(true) => pbp_aob::Aob::ones(8),
                Gate::Had(k) => pbp_aob::Aob::hadamard(8, k as u32),
                Gate::And(x, y) => pbp_aob::Aob::and_of(
                    &regs[a.reg[x.0 as usize] as usize],
                    &regs[a.reg[y.0 as usize] as usize],
                ),
                Gate::Or(x, y) => pbp_aob::Aob::or_of(
                    &regs[a.reg[x.0 as usize] as usize],
                    &regs[a.reg[y.0 as usize] as usize],
                ),
                Gate::Xor(x, y) => pbp_aob::Aob::xor_of(
                    &regs[a.reg[x.0 as usize] as usize],
                    &regs[a.reg[y.0 as usize] as usize],
                ),
                Gate::Not(x) => regs[a.reg[x.0 as usize] as usize].not_of(),
            };
            regs[a.reg[i] as usize] = v;
        }
        // Every OUTPUT register must hold the right value at the end.
        for (_, o) in &outs {
            assert_eq!(regs[a.reg[o.0 as usize] as usize], direct[o.0 as usize]);
        }
    }

    #[test]
    fn constant_register_mode_reserves_leaves() {
        let (nl, outs) = factoring_netlist();
        let opts = EmitOptions { constant_registers: true, ways: 8 };
        let a = allocate(&nl, &outs, AllocStrategy::LinearScanReuse, &opts).unwrap();
        for (i, g) in nl.nodes().iter().enumerate() {
            match g {
                Gate::Const(false) => assert_eq!((a.reg[i], a.is_reserved[i]), (0, true)),
                Gate::Const(true) => assert_eq!((a.reg[i], a.is_reserved[i]), (1, true)),
                Gate::Had(k) => {
                    assert_eq!((a.reg[i], a.is_reserved[i]), (2 + k, true));
                }
                _ => {
                    assert!(!a.is_reserved[i]);
                    assert!(a.reg[i] as u16 >= 2 + 8);
                }
            }
        }
    }

    #[test]
    fn out_of_registers_is_reported() {
        // A chain of 300 XORs with all intermediates as outputs cannot fit
        // 256 registers greedily.
        let mut p = PintProgram::new();
        let a = p.h(1, 0b1);
        let b = p.h(1, 0b10);
        let mut cur = p.xor(&a, &b);
        for i in 0..300 {
            cur = p.xor(&cur, &a);
            cur = p.xor(&cur, &b);
            p.output(&format!("t{i}"), cur.bit(0));
        }
        let (nl, outs) = p.optimized();
        let opts = EmitOptions::default();
        let e = allocate(&nl, &outs, AllocStrategy::GreedyFresh, &opts);
        assert!(matches!(e, Err(RegAllocError::OutOfRegisters { .. })));
        // Reuse also fails here (every intermediate is an output), which
        // is the correct answer, not a panic.
        let e2 = allocate(&nl, &outs, AllocStrategy::LinearScanReuse, &opts);
        assert!(matches!(e2, Err(RegAllocError::OutOfRegisters { .. })));
    }
}
