//! The gate netlist: an SSA DAG over single-pbit values.

use std::collections::HashMap;

/// Index of a node in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// One gate (or leaf) in the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Constant 0 or 1 leaf.
    Const(bool),
    /// Hadamard leaf `H(k)`.
    Had(u8),
    /// Channel-wise AND.
    And(NodeId, NodeId),
    /// Channel-wise OR.
    Or(NodeId, NodeId),
    /// Channel-wise XOR.
    Xor(NodeId, NodeId),
    /// Channel-wise NOT.
    Not(NodeId),
}

/// Gate-count statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GateStats {
    /// Binary gates (`and`/`or`/`xor`).
    pub binary: usize,
    /// `not` gates.
    pub nots: usize,
    /// Hadamard leaves.
    pub hads: usize,
    /// Constant leaves.
    pub consts: usize,
}

impl GateStats {
    /// All nodes.
    pub fn total(&self) -> usize {
        self.binary + self.nots + self.hads + self.consts
    }
}

/// An SSA gate DAG with optional on-the-fly optimization.
#[derive(Debug, Clone)]
pub struct Netlist {
    nodes: Vec<Gate>,
    /// Structural hash-consing table (None when unoptimized).
    cse: Option<HashMap<Gate, NodeId>>,
    /// Algebraic folding enabled?
    fold: bool,
}

impl Netlist {
    /// Optimizing netlist: CSE + constant folding as nodes are built.
    pub fn new() -> Self {
        Netlist { nodes: Vec::new(), cse: Some(HashMap::new()), fold: true }
    }

    /// Baseline netlist: every requested gate is materialized — measures
    /// what the ref \[2\] optimizations buy.
    pub fn new_unoptimized() -> Self {
        Netlist { nodes: Vec::new(), cse: None, fold: false }
    }

    /// Node payload.
    #[inline]
    pub fn gate(&self, id: NodeId) -> Gate {
        self.nodes[id.0 as usize]
    }

    /// All nodes in SSA (topological) order.
    pub fn nodes(&self) -> &[Gate] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes exist yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Count nodes by kind.
    pub fn stats(&self) -> GateStats {
        let mut s = GateStats::default();
        for g in &self.nodes {
            match g {
                Gate::And(..) | Gate::Or(..) | Gate::Xor(..) => s.binary += 1,
                Gate::Not(..) => s.nots += 1,
                Gate::Had(..) => s.hads += 1,
                Gate::Const(..) => s.consts += 1,
            }
        }
        s
    }

    fn push(&mut self, g: Gate) -> NodeId {
        if let Some(cse) = &mut self.cse {
            if let Some(&id) = cse.get(&g) {
                return id;
            }
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(g);
            cse.insert(g, id);
            id
        } else {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(g);
            id
        }
    }

    /// Constant leaf.
    pub fn constant(&mut self, v: bool) -> NodeId {
        self.push(Gate::Const(v))
    }

    /// Hadamard leaf.
    pub fn had(&mut self, k: u8) -> NodeId {
        assert!(k < 16, "Hadamard channel-set is 4 bits");
        self.push(Gate::Had(k))
    }

    fn as_const(&self, id: NodeId) -> Option<bool> {
        match self.gate(id) {
            Gate::Const(v) => Some(v),
            _ => None,
        }
    }

    /// AND with algebraic folding (`x&0=0`, `x&1=x`, `x&x=x`).
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if self.fold {
            let (a, b) = (a.min(b), a.max(b)); // commutativity canonical form
            match (self.as_const(a), self.as_const(b)) {
                (Some(false), _) | (_, Some(false)) => return self.constant(false),
                (Some(true), _) => return b,
                (_, Some(true)) => return a,
                _ => {}
            }
            if a == b {
                return a;
            }
            return self.push(Gate::And(a, b));
        }
        self.push(Gate::And(a, b))
    }

    /// OR with folding (`x|1=1`, `x|0=x`, `x|x=x`).
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if self.fold {
            let (a, b) = (a.min(b), a.max(b));
            match (self.as_const(a), self.as_const(b)) {
                (Some(true), _) | (_, Some(true)) => return self.constant(true),
                (Some(false), _) => return b,
                (_, Some(false)) => return a,
                _ => {}
            }
            if a == b {
                return a;
            }
            return self.push(Gate::Or(a, b));
        }
        self.push(Gate::Or(a, b))
    }

    /// XOR with folding (`x^0=x`, `x^1=!x`, `x^x=0`).
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if self.fold {
            let (a, b) = (a.min(b), a.max(b));
            match (self.as_const(a), self.as_const(b)) {
                (Some(false), _) => return b,
                (_, Some(false)) => return a,
                (Some(true), _) => return self.not(b),
                (_, Some(true)) => return self.not(a),
                _ => {}
            }
            if a == b {
                return self.constant(false);
            }
            return self.push(Gate::Xor(a, b));
        }
        self.push(Gate::Xor(a, b))
    }

    /// NOT with folding (`!!x = x`, `!const`).
    pub fn not(&mut self, a: NodeId) -> NodeId {
        if self.fold {
            match self.gate(a) {
                Gate::Const(v) => return self.constant(!v),
                Gate::Not(x) => return x,
                _ => {}
            }
        }
        self.push(Gate::Not(a))
    }

    /// Dead-gate elimination: keep only nodes reachable from `roots`,
    /// renumbering densely. Returns the new netlist and the root remap.
    pub fn eliminate_dead(&self, roots: &[NodeId]) -> (Netlist, Vec<NodeId>) {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut live[n.0 as usize], true) {
                continue;
            }
            match self.gate(n) {
                Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Gate::Not(a) => stack.push(a),
                _ => {}
            }
        }
        let mut remap = vec![NodeId(u32::MAX); self.nodes.len()];
        let mut out = Netlist {
            nodes: Vec::new(),
            cse: self.cse.as_ref().map(|_| HashMap::new()),
            fold: self.fold,
        };
        for (i, g) in self.nodes.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let g2 = match *g {
                Gate::And(a, b) => Gate::And(remap[a.0 as usize], remap[b.0 as usize]),
                Gate::Or(a, b) => Gate::Or(remap[a.0 as usize], remap[b.0 as usize]),
                Gate::Xor(a, b) => Gate::Xor(remap[a.0 as usize], remap[b.0 as usize]),
                Gate::Not(a) => Gate::Not(remap[a.0 as usize]),
                leaf => leaf,
            };
            let id = NodeId(out.nodes.len() as u32);
            out.nodes.push(g2);
            if let Some(cse) = &mut out.cse {
                cse.insert(g2, id);
            }
            remap[i] = id;
        }
        let new_roots = roots.iter().map(|r| remap[r.0 as usize]).collect();
        (out, new_roots)
    }

    /// Critical-path depth (in gate levels) from leaves to the given
    /// roots — the netlist analogue of the §3.3 pipeline-budget question,
    /// and the metric the ref \[2\] optimizations also shrink.
    pub fn depth(&self, roots: &[NodeId]) -> u64 {
        let mut d = vec![0u64; self.nodes.len()];
        for (i, g) in self.nodes.iter().enumerate() {
            d[i] = match *g {
                Gate::Const(..) | Gate::Had(..) => 0,
                Gate::Not(a) => d[a.0 as usize] + 1,
                Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                    d[a.0 as usize].max(d[b.0 as usize]) + 1
                }
            };
        }
        roots.iter().map(|r| d[r.0 as usize]).max().unwrap_or(0)
    }

    /// Evaluate the netlist on explicit AoB vectors (the correctness
    /// oracle for the compiler): returns the value of each requested node.
    pub fn evaluate_aob(&self, ways: u32, roots: &[NodeId]) -> Vec<pbp_aob::Aob> {
        use pbp_aob::Aob;
        let mut vals: Vec<Aob> = Vec::with_capacity(self.nodes.len());
        for g in &self.nodes {
            let v = match *g {
                Gate::Const(false) => Aob::zeros(ways),
                Gate::Const(true) => Aob::ones(ways),
                Gate::Had(k) => Aob::hadamard(ways, k as u32),
                Gate::And(a, b) => Aob::and_of(&vals[a.0 as usize], &vals[b.0 as usize]),
                Gate::Or(a, b) => Aob::or_of(&vals[a.0 as usize], &vals[b.0 as usize]),
                Gate::Xor(a, b) => Aob::xor_of(&vals[a.0 as usize], &vals[b.0 as usize]),
                Gate::Not(a) => vals[a.0 as usize].not_of(),
            };
            vals.push(v);
        }
        roots.iter().map(|r| vals[r.0 as usize].clone()).collect()
    }
}

impl Default for Netlist {
    fn default() -> Self {
        Netlist::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cse_dedupes_structurally() {
        let mut nl = Netlist::new();
        let a = nl.had(0);
        let b = nl.had(1);
        let x = nl.and(a, b);
        let y = nl.and(b, a); // commuted: same node
        assert_eq!(x, y);
        assert_eq!(nl.stats().binary, 1);
    }

    #[test]
    fn folding_rules() {
        let mut nl = Netlist::new();
        let a = nl.had(2);
        let zero = nl.constant(false);
        let one = nl.constant(true);
        assert_eq!(nl.and(a, zero), zero);
        assert_eq!(nl.and(a, one), a);
        assert_eq!(nl.and(a, a), a);
        assert_eq!(nl.or(a, one), one);
        assert_eq!(nl.or(a, zero), a);
        assert_eq!(nl.xor(a, zero), a);
        assert_eq!(nl.xor(a, a), zero);
        let na = nl.not(a);
        assert_eq!(nl.not(na), a);
        assert_eq!(nl.xor(a, one), na);
    }

    #[test]
    fn unoptimized_materializes_everything() {
        let mut nl = Netlist::new_unoptimized();
        let a = nl.had(0);
        let zero = nl.constant(false);
        let x = nl.and(a, zero);
        let y = nl.and(a, zero);
        assert_ne!(x, y);
        assert_eq!(nl.stats().binary, 2);
    }

    #[test]
    fn dead_elimination_prunes() {
        let mut nl = Netlist::new();
        let a = nl.had(0);
        let b = nl.had(1);
        let keep = nl.and(a, b);
        let _dead = nl.xor(a, b);
        let (nl2, roots) = nl.eliminate_dead(&[keep]);
        assert_eq!(roots.len(), 1);
        assert_eq!(nl2.len(), 3); // had, had, and
        assert_eq!(nl2.stats().binary, 1);
        // Semantics preserved:
        let before = nl.evaluate_aob(6, &[keep]);
        let after = nl2.evaluate_aob(6, &roots);
        assert_eq!(before, after);
    }

    #[test]
    fn depth_computation() {
        let mut nl = Netlist::new();
        let a = nl.had(0);
        let b = nl.had(1);
        let x = nl.and(a, b); // depth 1
        let y = nl.xor(x, a); // depth 2
        let z = nl.not(y); // depth 3
        assert_eq!(nl.depth(&[a]), 0);
        assert_eq!(nl.depth(&[x]), 1);
        assert_eq!(nl.depth(&[z]), 3);
        assert_eq!(nl.depth(&[x, z]), 3);
    }

    #[test]
    fn optimization_reduces_depth_too() {
        let build = |mut p: crate::builder::PintProgram| {
            let b = p.h(4, 0x0F);
            let c = p.h(4, 0xF0);
            let d = p.mul(&b, &c);
            let n = p.mk(4, 15);
            let e = p.eq(&d, &n);
            p.output("e", e);
            let (nl, outs) = p.optimized();
            let roots: Vec<NodeId> = outs.iter().map(|(_, n)| *n).collect();
            nl.depth(&roots)
        };
        let opt = build(crate::builder::PintProgram::new());
        let unopt = build(crate::builder::PintProgram::new_unoptimized());
        assert!(opt <= unopt, "{opt} vs {unopt}");
        assert!(opt > 5, "a 4x4 multiplier has real depth");
    }

    #[test]
    fn evaluate_matches_aob_algebra() {
        use pbp_aob::Aob;
        let mut nl = Netlist::new();
        let h0 = nl.had(0);
        let h3 = nl.had(3);
        let x = nl.xor(h0, h3);
        let n = nl.not(x);
        let vals = nl.evaluate_aob(8, &[n]);
        let expect = Aob::xor_of(&Aob::hadamard(8, 0), &Aob::hadamard(8, 3)).not_of();
        assert_eq!(vals[0], expect);
    }
}

/// Simulation-based equivalence check of two netlists' outputs: evaluates
/// both DAGs over the full AoB semantics at the given entanglement degree.
/// Because every leaf is a *fixed* pattern (constants and `H(k)`), AoB
/// evaluation at degree `ways > max k` is exhaustive over all leaf
/// valuations — this is a complete equivalence decision, not a sample.
pub fn equivalent(
    a: (&Netlist, &[NodeId]),
    b: (&Netlist, &[NodeId]),
    ways: u32,
) -> bool {
    if a.1.len() != b.1.len() {
        return false;
    }
    let va = a.0.evaluate_aob(ways, a.1);
    let vb = b.0.evaluate_aob(ways, b.1);
    va == vb
}

#[cfg(test)]
mod equiv_tests {
    use super::*;
    use crate::builder::PintProgram;

    fn roots(p: &PintProgram) -> (Netlist, Vec<NodeId>) {
        let (nl, outs) = p.optimized();
        let r = outs.iter().map(|(_, n)| *n).collect();
        (nl, r)
    }

    #[test]
    fn optimized_equals_unoptimized_factoring() {
        // The ref \[2\] optimizations must be semantics-preserving; check
        // the complete factoring predicate both ways.
        let build = |opt: bool| {
            let mut p =
                if opt { PintProgram::new() } else { PintProgram::new_unoptimized() };
            let b = p.h(4, 0x0F);
            let c = p.h(4, 0xF0);
            let d = p.mul(&b, &c);
            let n = p.mk(4, 15);
            let e = p.eq(&d, &n);
            p.output("e", e);
            p
        };
        let (na, ra) = roots(&build(true));
        let (nb, rb) = roots(&build(false));
        assert!(equivalent((&na, &ra), (&nb, &rb), 8));
    }

    #[test]
    fn different_programs_are_distinguished() {
        let mut p1 = PintProgram::new();
        let a = p1.h(2, 0b01 | 0b10);
        let k = p1.mk(2, 3);
        let e1 = p1.eq(&a, &k);
        p1.output("e", e1);
        let mut p2 = PintProgram::new();
        let a = p2.h(2, 0b01 | 0b10);
        let k = p2.mk(2, 2); // different constant
        let e2 = p2.eq(&a, &k);
        p2.output("e", e2);
        let (na, ra) = roots(&p1);
        let (nb, rb) = roots(&p2);
        assert!(!equivalent((&na, &ra), (&nb, &rb), 8));
    }

    #[test]
    fn arity_mismatch_is_inequivalent() {
        let mut p1 = PintProgram::new();
        let a = p1.h(2, 0b11);
        p1.output("x", a.bit(0));
        let mut p2 = PintProgram::new();
        let b = p2.h(2, 0b11);
        p2.output("x", b.bit(0));
        p2.output("y", b.bit(1));
        let (na, ra) = roots(&p1);
        let (nb, rb) = roots(&p2);
        assert!(!equivalent((&na, &ra), (&nb, &rb), 8));
    }
}
