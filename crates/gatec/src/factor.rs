//! Prime-factoring program generation (paper §4) and the verbatim
//! Figure 10 listing.

use crate::builder::PintProgram;
use crate::emit::EmitResult;
use crate::regalloc::RegAllocError;
use crate::Compiler;

/// A complete, runnable factoring program.
#[derive(Debug, Clone)]
pub struct FactorProgram {
    /// Full assembly text: gate computation + read-out tail + `sys`.
    pub asm: String,
    /// Qat register holding the `e` predicate ("product equals n").
    pub e_reg: u8,
    /// Qat instructions in the gate section.
    pub qat_insns: usize,
    /// Operand width in pbits.
    pub width: usize,
}

/// Build the word-level factoring program for `n` with `width`-bit
/// operands (Figure 9 generalized): `e = (b*c == n)` with `b` on channel
/// dimensions `0..width` and `c` on `width..2*width`.
pub fn build_factoring(n: u64, width: usize, optimized: bool) -> PintProgram {
    assert!(width <= 8, "two operands need 2*width ≤ 16 dimensions");
    assert!(n < (1 << width), "n must fit the operand width");
    let mut p = if optimized { PintProgram::new() } else { PintProgram::new_unoptimized() };
    let b = p.h_auto(width);
    let c = p.h_auto(width);
    let d = p.mul(&b, &c);
    let target = p.mk(width, n);
    let e = p.eq(&d, &target);
    p.output("e", e);
    p
}

/// Compile the complete factoring program, including the Figure-10-style
/// read-out tail:
///
/// ```text
/// li   $0,(1<<width)+n   ; the last "trivial" channel (b = n, c = 1)
/// next $0,@e             ; first non-trivial factor channel
/// copy $1,$0
/// next $1,@e             ; second non-trivial factor channel
/// li   $2,(1<<width)-1
/// and  $0,$2             ; channel % 2^width  ==  the factor (b)
/// and  $1,$2
/// sys
/// ```
///
/// After the run, `$0` and `$1` hold the two smallest non-trivial factors
/// of `n` (for 15: 5 and 3, matching the paper's `;5` / `;3` comments).
/// For prime `n` the pair is `(1, 0)`: only the `b = 1` channel remains,
/// and the second `next` finds nothing.
pub fn compile_factoring(
    n: u64,
    width: usize,
    compiler: &Compiler,
) -> Result<FactorProgram, RegAllocError> {
    let prog = build_factoring(n, width, true);
    let EmitResult { asm, output_regs, qat_insns } = compiler.compile(&prog)?;
    let e_reg = output_regs
        .iter()
        .find(|(name, _)| name == "e")
        .expect("factoring program defines `e`")
        .1;
    let mut full = asm;
    let skip = (1u64 << width) + n;
    let mask = (1u64 << width) - 1;
    full.push_str(&format!(
        "li $0,{skip}\nnext $0,@{e_reg}\ncopy $1,$0\nnext $1,@{e_reg}\n\
         li $2,{mask}\nand $0,$2\nand $1,$2\nsys\n"
    ));
    Ok(FactorProgram { asm: full, e_reg, qat_insns, width })
}

/// The paper's Figure 10, transcribed verbatim (three columns read in
/// order). Produces the prime factors of 15 in `$0` and `$1` when run on
/// a Tangled/Qat with at least 8-way entanglement.
pub const FIGURE_10: &str = "\
had @0,3
had @1,5
and @2,@0,@1
had @3,4
and @4,@0,@3
had @5,2
and @6,@5,@1
and @7,@4,@6
and @8,@5,@3
had @9,1
and @10,@9,@1
and @11,@8,@10
and @12,@9,@3
had @13,0
and @14,@13,@1
and @15,@12,@14
xor @16,@8,@10
and @17,@15,@16
or @18,@11,@17
xor @19,@4,@6
and @20,@18,@19
or @21,@7,@20
and @22,@2,@21
had @23,6
and @24,@0,@23
and @25,@22,@24
xor @26,@2,@21
and @27,@5,@23
and @28,@26,@27
xor @29,@18,@19
and @30,@9,@23
and @31,@29,@30
xor @32,@15,@16
and @33,@13,@23
and @34,@32,@33
xor @35,@29,@30
and @36,@34,@35
or @37,@31,@36
xor @38,@26,@27
and @39,@37,@38
or @40,@28,@39
xor @41,@22,@24
and @42,@40,@41
or @43,@25,@42
had @44,7
and @45,@0,@44
and @46,@43,@45
xor @47,@40,@41
and @48,@5,@44
and @49,@47,@48
xor @50,@37,@38
and @51,@9,@44
and @52,@50,@51
xor @53,@34,@35
and @54,@13,@44
and @55,@53,@54
xor @56,@50,@51
and @57,@55,@56
or @58,@52,@57
xor @59,@47,@48
and @60,@58,@59
or @61,@49,@60
xor @62,@43,@45
and @63,@61,@62
or @64,@46,@63
xor @65,@61,@62
xor @66,@58,@59
xor @67,@55,@56
xor @68,@53,@54
xor @69,@32,@33
and @70,@13,@3
xor @71,@12,@14
and @72,@70,@71
and @73,@69,@72
and @74,@68,@73
or @75,@74,@74
not @75
or @76,@67,@75
or @77,@66,@76
or @78,@65,@77
or @79,@64,@78
or @80,@79,@79
not @80
lex $0,31
next $0,@80
copy $1,$0
next $1,@80
lex $2,15
and $0,$2 ;5
and $1,$2 ;3
";

#[cfg(test)]
mod tests {
    use super::*;
    use qat_coproc::QatConfig;
    use tangled_sim::{Machine, MachineConfig};

    fn run_asm(asm: &str, ways: u32) -> Machine {
        let img = tangled_asm::assemble(asm).expect("assembles");
        let cfg = MachineConfig { qat: QatConfig::with_ways(ways), ..Default::default() };
        let mut m = Machine::with_image(cfg, &img.words);
        m.run().expect("runs to sys");
        m
    }

    #[test]
    fn compiled_factoring_of_15_yields_5_and_3() {
        let prog = compile_factoring(15, 4, &Compiler::default()).unwrap();
        let m = run_asm(&prog.asm, 8);
        assert_eq!((m.regs[0], m.regs[1]), (5, 3));
    }

    #[test]
    fn compiled_factoring_of_221_yields_13_and_17() {
        // The prototype's original target (§4.1), needing 16-way
        // entanglement (two 8-bit operands).
        let prog = compile_factoring(221, 8, &Compiler::default()).unwrap();
        let m = run_asm(&prog.asm, 16);
        // 17 pairs with the smaller cofactor (13), so it is found first.
        assert_eq!((m.regs[0], m.regs[1]), (17, 13));
    }

    #[test]
    fn prime_modulus_reports_one_zero() {
        let prog = compile_factoring(13, 4, &Compiler::default()).unwrap();
        let m = run_asm(&prog.asm, 8);
        assert_eq!((m.regs[0], m.regs[1]), (1, 0));
    }

    #[test]
    fn more_factorizations() {
        // The first factor found pairs with the smallest cofactor c ≥ 2,
        // so it is the largest non-trivial factor.
        for (n, w, lo, hi) in [(21u64, 5usize, 7u16, 3u16), (35, 6, 7, 5), (6, 3, 3, 2)] {
            let prog = compile_factoring(n, w, &Compiler::default()).unwrap();
            let m = run_asm(&prog.asm, (2 * w) as u32);
            assert_eq!((m.regs[0], m.regs[1]), (lo, hi), "n={n}");
        }
    }
}
