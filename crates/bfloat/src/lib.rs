#![warn(missing_docs)]
//! # tangled-bfloat — the Tangled bfloat16 arithmetic unit
//!
//! Tangled's floating-point instructions (`addf`, `mulf`, `negf`, `recip`,
//! `float`, `int` — paper Table 1) operate on **bfloat16**: 1 sign bit,
//! 8 exponent bits, 7 fraction bits — exactly the top half of an IEEE-754
//! `f32`. The paper chose bfloat16 because "values can be treated as
//! standard 32-bit float values by simply catenating a 16-bit value of 0",
//! and because single-cycle FPGA ALU implementations exist.
//!
//! This crate reproduces the course ALU library:
//!
//! * [`Bf16`] — the value type, with conversions and classification.
//! * `add`/`mul` — computed through `f32` (every bf16 embeds exactly in
//!   `f32`) and rounded back with round-to-nearest-even, the standard
//!   bfloat16 semantics.
//! * [`Bf16::neg`] — a pure sign-bit flip, as the hardware does it.
//! * [`Bf16::recip`] — the course's lookup-table reciprocal: a 128-entry
//!   fraction-reciprocal table (the paper's "VMEM file initializing a
//!   lookup table for computing fraction reciprocals") plus exponent
//!   negation, with one Newton–Raphson refinement step. Accuracy is tested
//!   exhaustively to ≤ 1 ulp against the exact reciprocal on normal inputs.
//! * [`Bf16::from_i16`] / [`Bf16::to_i16`] — the `float`/`int` conversion
//!   instructions (truncate toward zero, saturating).

mod recip_table;

pub use recip_table::RECIP_TABLE;

/// A bfloat16 value: the top 16 bits of an IEEE-754 single.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(pub u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Negative one.
    pub const NEG_ONE: Bf16 = Bf16(0xBF80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A canonical quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);

    /// Reinterpret the 16-bit pattern as an `f32` by catenating 16 zero
    /// bits — the paper's observation about bfloat16's convenience.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Round an `f32` to bfloat16 with round-to-nearest-even.
    #[inline]
    pub fn from_f32(x: f32) -> Bf16 {
        let bits = x.to_bits();
        if x.is_nan() {
            // Preserve sign + set a quiet bit so NaN survives truncation.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round-to-nearest-even on the discarded low half: add 0x7FFF plus
        // the current lsb of the kept half; carry propagates into the
        // exponent, correctly producing infinity on overflow.
        let lsb = (bits >> 16) & 1;
        Bf16(((bits + 0x0000_7FFF + lsb) >> 16) as u16)
    }

    /// Sign bit set?
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// Biased exponent field (8 bits).
    #[inline]
    pub fn exponent_bits(self) -> u16 {
        (self.0 >> 7) & 0xFF
    }

    /// Fraction field (7 bits).
    #[inline]
    pub fn fraction_bits(self) -> u16 {
        self.0 & 0x7F
    }

    /// NaN test.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.exponent_bits() == 0xFF && self.fraction_bits() != 0
    }

    /// Infinity test (either sign).
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.exponent_bits() == 0xFF && self.fraction_bits() == 0
    }

    /// Zero test (either sign).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 & 0x7FFF == 0
    }

    /// `addf`: bfloat16 addition with round-to-nearest-even.
    #[inline]
    pub fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }

    /// `mulf`: bfloat16 multiplication. Exact-then-round: the product of
    /// two 8-bit-significand values fits in `f32`'s 24-bit significand, so
    /// this is correctly rounded.
    #[inline]
    pub fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }

    /// `negf`: flip the sign bit. The hardware treats this as a pure
    /// bitwise operation, so `negf` of NaN flips the NaN's sign too.
    #[inline]
    pub fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }

    /// `recip`: table-driven reciprocal, as the course ALU implements it.
    ///
    /// For a normal input `±1.f × 2^e`, the significand reciprocal is
    /// seeded from [`RECIP_TABLE`]`[f]` and refined with one Newton–Raphson
    /// step; the exponent is negated. Specials follow IEEE:
    /// `recip(±0) = ±inf`, `recip(±inf) = ±0`, `recip(NaN) = NaN`.
    /// Subnormal inputs flush to signed infinity (the course ALU flushed
    /// subnormals to zero — a common FPGA shortcut).
    pub fn recip(self) -> Bf16 {
        if self.is_nan() {
            return Bf16::NAN;
        }
        let sign = self.0 & 0x8000;
        if self.is_infinite() {
            return Bf16(sign); // signed zero
        }
        if self.exponent_bits() == 0 {
            // zero or subnormal: flush -> signed infinity
            return Bf16(sign | 0x7F80);
        }
        // Significand 1.f in [1, 2) as an exact f32.
        let x = f32::from_bits(0x3F80_0000 | ((self.fraction_bits() as u32) << 16));
        // Table seed: fraction bits of 2/(1.f) halved into [0.5, 1).
        let seed_frac = RECIP_TABLE[self.fraction_bits() as usize];
        let mut r = f32::from_bits(0x3F00_0000 | ((seed_frac as u32) << 16));
        // One Newton–Raphson refinement: r = r * (2 - x*r).
        r = r * (2.0 - x * r);
        let e = self.exponent_bits() as i32 - 127;
        let recip = r * (2.0f32).powi(-e);
        Bf16::from_f32(if sign != 0 { -recip } else { recip })
    }

    /// Subtraction composed exactly as Tangled software does it:
    /// `addf` with `negf` of the subtrahend.
    #[inline]
    pub fn sub(self, rhs: Bf16) -> Bf16 {
        self.add(rhs.neg())
    }

    /// Division composed as Tangled software does it: `mulf` with `recip`
    /// of the divisor (so its accuracy inherits the table reciprocal's
    /// ≤ 1 ulp bound plus one rounding).
    #[inline]
    pub fn div(self, rhs: Bf16) -> Bf16 {
        self.mul(rhs.recip())
    }

    /// IEEE-754 ordered comparison (`None` when either side is NaN) —
    /// what an `sltf` instruction would compute had the ISA included one.
    pub fn partial_cmp_ieee(self, rhs: Bf16) -> Option<std::cmp::Ordering> {
        if self.is_nan() || rhs.is_nan() {
            return None;
        }
        self.to_f32().partial_cmp(&rhs.to_f32())
    }

    /// Exact reciprocal via `f32` division — the oracle the table-based
    /// [`Bf16::recip`] is tested against.
    pub fn recip_exact(self) -> Bf16 {
        Bf16::from_f32(1.0 / self.to_f32())
    }

    /// `float $d`: convert a 16-bit two's-complement integer to bfloat16
    /// (round-to-nearest-even; integers above 256 in magnitude may round).
    pub fn from_i16(v: i16) -> Bf16 {
        Bf16::from_f32(v as f32)
    }

    /// `int $d`: convert to a 16-bit integer, truncating toward zero and
    /// saturating on overflow; NaN converts to 0.
    pub fn to_i16(self) -> i16 {
        let f = self.to_f32();
        if f.is_nan() {
            return 0;
        }
        if f >= i16::MAX as f32 {
            return i16::MAX;
        }
        if f <= i16::MIN as f32 {
            return i16::MIN;
        }
        f.trunc() as i16
    }
}

impl std::fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bf16({:#06x} = {})", self.0, self.to_f32())
    }
}

impl std::fmt::Display for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> Self {
        x.to_f32()
    }
}

/// Distance in units-in-the-last-place between two finite values (test
/// helper for the reciprocal accuracy bound). Signed patterns are mapped
/// onto a single monotone integer line so ±0 are adjacent.
pub fn ulp_distance(a: Bf16, b: Bf16) -> u32 {
    fn key(x: Bf16) -> i32 {
        let m = x.0 as i32;
        if m & 0x8000 != 0 {
            0x8000 - m
        } else {
            m
        }
    }
    key(a).abs_diff(key(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_roundtrip() {
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::NEG_ONE.to_f32(), -1.0);
        assert!(Bf16::INFINITY.to_f32().is_infinite());
        assert!(Bf16::NAN.is_nan());
    }

    #[test]
    fn from_f32_rounds_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next
        // representable value; ties-to-even keeps 1.0.
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(halfway), Bf16(0x3F80));
        // Just above halfway rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(above), Bf16(0x3F81));
        // Odd lsb ties round up to even.
        let halfway_odd = f32::from_bits(0x3F81_8000);
        assert_eq!(Bf16::from_f32(halfway_odd), Bf16(0x3F82));
    }

    #[test]
    fn from_f32_overflow_carries_to_infinity() {
        let just_below_inf = f32::from_bits(0x7F7F_FFFF); // f32::MAX
        assert_eq!(Bf16::from_f32(just_below_inf), Bf16::INFINITY);
        assert_eq!(Bf16::from_f32(f32::INFINITY), Bf16::INFINITY);
        assert_eq!(Bf16::from_f32(f32::NEG_INFINITY), Bf16::NEG_INFINITY);
    }

    #[test]
    fn add_basics() {
        let two = Bf16::ONE.add(Bf16::ONE);
        assert_eq!(two.to_f32(), 2.0);
        assert_eq!(Bf16::from_f32(1.5).add(Bf16::from_f32(2.25)).to_f32(), 3.75);
        assert_eq!(Bf16::ONE.add(Bf16::NEG_ONE), Bf16::ZERO);
        assert!(Bf16::INFINITY.add(Bf16::NEG_INFINITY).is_nan());
    }

    #[test]
    fn mul_basics() {
        assert_eq!(Bf16::from_f32(3.0).mul(Bf16::from_f32(5.0)).to_f32(), 15.0);
        assert_eq!(Bf16::from_f32(-2.0).mul(Bf16::from_f32(0.5)).to_f32(), -1.0);
        assert!(Bf16::ZERO.mul(Bf16::INFINITY).is_nan());
        assert_eq!(Bf16::from_f32(1e38).mul(Bf16::from_f32(10.0)), Bf16::INFINITY);
    }

    #[test]
    fn neg_is_sign_flip() {
        assert_eq!(Bf16::ONE.neg(), Bf16::NEG_ONE);
        assert_eq!(Bf16::ZERO.neg(), Bf16(0x8000)); // -0.0
        assert_eq!(Bf16::ONE.neg().neg(), Bf16::ONE);
        assert_eq!(Bf16::NAN.neg().0, Bf16::NAN.0 ^ 0x8000);
    }

    #[test]
    fn recip_specials() {
        assert_eq!(Bf16::ZERO.recip(), Bf16::INFINITY);
        assert_eq!(Bf16(0x8000).recip(), Bf16::NEG_INFINITY);
        assert_eq!(Bf16::INFINITY.recip(), Bf16::ZERO);
        assert_eq!(Bf16::NEG_INFINITY.recip(), Bf16(0x8000));
        assert!(Bf16::NAN.recip().is_nan());
        assert_eq!(Bf16::ONE.recip(), Bf16::ONE);
        assert_eq!(Bf16::from_f32(2.0).recip().to_f32(), 0.5);
        assert_eq!(Bf16::from_f32(-4.0).recip().to_f32(), -0.25);
        assert_eq!(Bf16::from_f32(8.0).recip().to_f32(), 0.125);
    }

    #[test]
    fn recip_table_accuracy_all_normals() {
        // Exhaustive over every normal bf16: table+Newton within 1 ulp of
        // the correctly-rounded reciprocal.
        let mut worst = 0u32;
        for bits in 0..=0xFFFFu16 {
            let x = Bf16(bits);
            if x.is_nan() || x.is_infinite() || x.exponent_bits() == 0 {
                continue;
            }
            let got = x.recip();
            let want = x.recip_exact();
            if got.is_infinite() || want.is_infinite() || got.is_zero() || want.is_zero() {
                assert_eq!(got, want, "special disagreement at x={x:?}");
                continue;
            }
            worst = worst.max(ulp_distance(got, want));
        }
        assert!(worst <= 1, "worst reciprocal error {worst} ulp");
    }

    #[test]
    fn int_conversions() {
        for v in [-32768i16, -1000, -1, 0, 1, 2, 127, 128, 255, 256, 1000] {
            let f = Bf16::from_i16(v);
            // bf16 has an 8-bit significand: integers up to 256 are exact.
            if v.unsigned_abs() <= 256 {
                assert_eq!(f.to_i16(), v, "v={v}");
            }
        }
        assert_eq!(Bf16::from_f32(2.75).to_i16(), 2);
        assert_eq!(Bf16::from_f32(-2.75).to_i16(), -2);
        assert_eq!(Bf16::from_f32(1e9).to_i16(), i16::MAX);
        assert_eq!(Bf16::from_f32(-1e9).to_i16(), i16::MIN);
        assert_eq!(Bf16::NAN.to_i16(), 0);
        assert_eq!(Bf16::INFINITY.to_i16(), i16::MAX);
    }

    #[test]
    fn sub_and_div_compose_correctly() {
        assert_eq!(Bf16::from_f32(7.0).sub(Bf16::from_f32(3.0)).to_f32(), 4.0);
        assert_eq!(Bf16::from_f32(-1.5).sub(Bf16::from_f32(-1.5)), Bf16::ZERO);
        assert_eq!(Bf16::from_f32(10.0).div(Bf16::from_f32(4.0)).to_f32(), 2.5);
        assert_eq!(Bf16::from_f32(1.0).div(Bf16::ZERO), Bf16::INFINITY);
        assert!(Bf16::ZERO.div(Bf16::ZERO).is_nan());
    }

    #[test]
    fn div_is_close_to_exact_division_everywhere() {
        // Exhaustive over a normal operand grid: mul-by-recip lands within
        // 2 ulps of the correctly rounded quotient.
        let mut worst = 0;
        for a in (0u16..0x7F80).step_by(97) {
            for b in (0x0080u16..0x7F80).step_by(89) {
                let (x, y) = (Bf16(a), Bf16(b));
                if x.exponent_bits() == 0 {
                    continue;
                }
                let got = x.div(y);
                let want = Bf16::from_f32(x.to_f32() / y.to_f32());
                if got.is_infinite() || got.is_zero() || want.is_infinite() || want.is_zero() {
                    continue; // overflow/underflow edges compared elsewhere
                }
                worst = worst.max(ulp_distance(got, want));
            }
        }
        assert!(worst <= 2, "worst division error {worst} ulp");
    }

    #[test]
    fn ieee_comparison() {
        use std::cmp::Ordering::*;
        assert_eq!(Bf16::ONE.partial_cmp_ieee(Bf16::from_f32(2.0)), Some(Less));
        assert_eq!(Bf16::ONE.partial_cmp_ieee(Bf16::ONE), Some(Equal));
        assert_eq!(Bf16::from_f32(-3.0).partial_cmp_ieee(Bf16::NEG_INFINITY), Some(Greater));
        assert_eq!(Bf16::ZERO.partial_cmp_ieee(Bf16(0x8000)), Some(Equal)); // +0 == -0
        assert_eq!(Bf16::NAN.partial_cmp_ieee(Bf16::ONE), None);
    }

    #[test]
    fn float_of_large_int_rounds() {
        // 32767 is not representable in bf16; nearest is 32768.
        assert_eq!(Bf16::from_i16(32767).to_f32(), 32768.0);
    }

    #[test]
    fn ulp_distance_sanity() {
        assert_eq!(ulp_distance(Bf16::ONE, Bf16::ONE), 0);
        assert_eq!(ulp_distance(Bf16(0x3F80), Bf16(0x3F81)), 1);
        assert_eq!(ulp_distance(Bf16(0x0000), Bf16(0x8000)), 0); // ±0 adjacent
    }
}
