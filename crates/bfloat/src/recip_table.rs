//! The fraction-reciprocal lookup table.
//!
//! The course Verilog shipped this table as a VMEM file loaded into FPGA
//! block RAM; here it is computed at compile time by the same formula.
//!
//! Entry `f` (for `f` in `0..128`) seeds the reciprocal of the significand
//! `1.f = 1 + f/128`: it holds the 7 fraction bits `t` such that
//! `(1 + t/128) / 2` is the rounded value of `1 / (1 + f/128)`. Entry 0
//! would need `t = 128` (the reciprocal of exactly 1.0 is 1.0, just outside
//! the halved-encoding range), so it clamps to 127 and the Newton–Raphson
//! refinement step in [`crate::Bf16::recip`] absorbs the error.

/// 128-entry reciprocal seed table: `RECIP_TABLE[f]` ≈ fraction bits of
/// `2 / (1 + f/128)`, clamped to 7 bits.
pub const RECIP_TABLE: [u16; 128] = make_table();

const fn make_table() -> [u16; 128] {
    let mut table = [0u16; 128];
    let mut f: u32 = 0;
    while f < 128 {
        let denom = 128 + f;
        // round(32768 / denom) via (2a + b) / (2b)
        let rounded = (2 * 32768 + denom) / (2 * denom);
        let t = if rounded >= 256 {
            127 // only f = 0 clamps
        } else {
            (rounded - 128) as u16
        };
        // rounded is in (128, 256] for f in 0..128, so t fits in 7 bits
        // after the clamp above.
        table[f as usize] = if t > 127 { 127 } else { t };
        f += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_fit_seven_bits() {
        for (f, &t) in RECIP_TABLE.iter().enumerate() {
            assert!(t <= 127, "entry {f} = {t} exceeds 7 bits");
        }
    }

    #[test]
    fn table_is_monotone_nonincreasing() {
        // 1/(1.f) decreases as f grows, so seeds must not increase.
        for w in RECIP_TABLE.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn seed_relative_error_bounded() {
        // Every seed must be within 1% of the true significand reciprocal —
        // tight enough that one Newton step lands within a bf16 ulp.
        for f in 0..128u32 {
            let x = 1.0 + f as f64 / 128.0;
            let seed = (1.0 + RECIP_TABLE[f as usize] as f64 / 128.0) / 2.0;
            let rel = ((seed - 1.0 / x) * x).abs();
            assert!(rel < 0.01, "f={f} rel err {rel}");
        }
    }

    #[test]
    fn known_entries() {
        // f=0: clamped top entry.
        assert_eq!(RECIP_TABLE[0], 127);
        // f=128/2=64 -> 1.5; 1/1.5 = 2/3; seed fraction = round(32768/192)-128
        // = round(170.67)-128 = 171-128 = 43.
        assert_eq!(RECIP_TABLE[64], 43);
        // f=127 -> 1.9921875; round(32768/255)-128 = 129-128 = 1.
        assert_eq!(RECIP_TABLE[127], 1);
    }
}
