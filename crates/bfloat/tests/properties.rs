//! Property tests for the bfloat16 ALU against the f32 oracle.

use proptest::prelude::*;
use tangled_bfloat::{ulp_distance, Bf16};

/// Strategy: an arbitrary finite, non-NaN bf16 bit pattern.
fn finite_bf16() -> impl Strategy<Value = Bf16> {
    any::<u16>().prop_filter_map("finite", |bits| {
        let v = Bf16(bits);
        (!v.is_nan() && !v.is_infinite()).then_some(v)
    })
}

proptest! {
    #[test]
    fn roundtrip_through_f32_is_identity(v in finite_bf16()) {
        // Every bf16 embeds exactly in f32 and must come back unchanged.
        prop_assert_eq!(Bf16::from_f32(v.to_f32()), v);
    }

    #[test]
    fn add_matches_f32_oracle(a in finite_bf16(), b in finite_bf16()) {
        let got = a.add(b);
        let want = Bf16::from_f32(a.to_f32() + b.to_f32());
        prop_assert_eq!(got.0, want.0);
    }

    #[test]
    fn add_commutes(a in finite_bf16(), b in finite_bf16()) {
        let x = a.add(b);
        let y = b.add(a);
        // ±0 results may differ in sign only when both inputs are zeros of
        // opposite sign; IEEE addition is still commutative bit-for-bit.
        prop_assert_eq!(x.0, y.0);
    }

    #[test]
    fn mul_commutes_and_matches_oracle(a in finite_bf16(), b in finite_bf16()) {
        prop_assert_eq!(a.mul(b).0, b.mul(a).0);
        let want = Bf16::from_f32(a.to_f32() * b.to_f32());
        prop_assert_eq!(a.mul(b).0, want.0);
    }

    #[test]
    fn neg_is_involution(v in any::<u16>().prop_map(Bf16)) {
        prop_assert_eq!(v.neg().neg(), v);
    }

    #[test]
    fn add_identity_zero(v in finite_bf16()) {
        // x + 0.0 == x except that -0 + +0 = +0.
        let r = v.add(Bf16::ZERO);
        if v.is_zero() {
            prop_assert!(r.is_zero());
        } else {
            prop_assert_eq!(r, v);
        }
    }

    #[test]
    fn mul_identity_one(v in finite_bf16()) {
        prop_assert_eq!(v.mul(Bf16::ONE), v);
    }

    #[test]
    fn recip_within_one_ulp(v in finite_bf16()) {
        prop_assume!(v.exponent_bits() != 0); // skip zero/subnormal
        let got = v.recip();
        let want = v.recip_exact();
        if got.is_infinite() || got.is_zero() || want.is_infinite() || want.is_zero() {
            prop_assert_eq!(got, want);
        } else {
            prop_assert!(ulp_distance(got, want) <= 1);
        }
    }

    #[test]
    fn int_roundtrip_small(v in -256i16..=256) {
        prop_assert_eq!(Bf16::from_i16(v).to_i16(), v);
    }

    #[test]
    fn to_i16_truncates_toward_zero(v in finite_bf16()) {
        let f = v.to_f32();
        prop_assume!(f.abs() < 30000.0);
        let i = v.to_i16();
        prop_assert!((i as f32).abs() <= f.abs());
        prop_assert!((f - i as f32).abs() < 1.0);
    }
}
