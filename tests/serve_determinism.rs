//! Pool-size independence of the serve layer: the same job set must
//! produce identical per-job payloads at 1, 2, and 4 workers, and the
//! merged metrics snapshot must not depend on result arrival order.
//!
//! Both properties are what make `qat-fuzz --workers N` a faithful
//! speed-up of the serial campaign rather than a different experiment.

use proptest::prelude::*;
use tangled_qat::serve::{
    FlightConfig, JobKind, JobResult, JobSpec, LineSink, Pool, ServeConfig,
};
use tangled_qat::sim::difftest::DiffConfig;
use tangled_qat::telemetry;

/// A mixed job set seeded from `base`: generate jobs (the fuzzer's
/// workload, including shrink-on-divergence and periodic cross-checks)
/// plus differential jobs over a fixed program.
fn job_set(base: u64) -> Vec<JobSpec> {
    let cfg = DiffConfig::default();
    let words =
        tangled_qat::asm::assemble("had @123,4\nlex $8,42\nnext $8,@123\nsys\n")
            .unwrap()
            .words;
    let mut jobs = Vec::new();
    for i in 0..6u64 {
        let seed = base * 7 + i;
        jobs.push(JobSpec {
            kind: JobKind::Generate { seed, profile: None, len: 25, crosscheck: i == 0 },
            cfg,
            label: format!("gen-{seed}"),
        });
    }
    jobs.push(JobSpec {
        kind: JobKind::Differential { words: words.clone() },
        cfg,
        label: "diff".into(),
    });
    jobs.push(JobSpec {
        kind: JobKind::Run { words, model: "pipeline-5-fw".into() },
        cfg,
        label: "run".into(),
    });
    jobs
}

/// Run the set on a fresh pool, returning results in submission order.
fn run_on(workers: usize, jobs: &[JobSpec]) -> Vec<JobResult> {
    let pool = Pool::new(ServeConfig { workers, ..Default::default() });
    for j in jobs {
        pool.submit(j.clone()).unwrap();
    }
    let results = pool.drain();
    assert_eq!(results.len(), jobs.len());
    results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn outcomes_and_metrics_are_identical_across_worker_counts(base in 1u64..500) {
        telemetry::set_mode(telemetry::Mode::Counters);
        let jobs = job_set(base);
        let runs: Vec<Vec<JobResult>> =
            [1usize, 2, 4].iter().map(|&w| run_on(w, &jobs)).collect();
        let reference = &runs[0];
        for (w, run) in runs.iter().enumerate().skip(1) {
            for (a, b) in reference.iter().zip(run) {
                prop_assert_eq!(a.id, b.id);
                prop_assert_eq!(&a.label, &b.label);
                // The payload — outcome, findings, coverage, report — is
                // bit-identical whichever worker executed the job.
                prop_assert_eq!(&a.result, &b.result, "job {} differs at {} workers", a.id, w);
                // So is the per-job telemetry slice.
                prop_assert_eq!(&a.metrics, &b.metrics, "metrics of job {} differ", a.id);
            }
        }
    }

    #[test]
    fn merged_snapshot_is_invariant_under_result_permutation(base in 1u64..500) {
        telemetry::set_mode(telemetry::Mode::Counters);
        let results = run_on(2, &job_set(base));
        let parts: Vec<&telemetry::Snapshot> = results.iter().map(|r| &r.metrics).collect();
        let forward = telemetry::Snapshot::merged(parts.iter().copied());
        let reverse = telemetry::Snapshot::merged(parts.iter().rev().copied());
        let mut rotated: Vec<&telemetry::Snapshot> = parts.clone();
        rotated.rotate_left(parts.len() / 2);
        let rotated = telemetry::Snapshot::merged(rotated);
        prop_assert_eq!(&forward, &reverse);
        prop_assert_eq!(&forward, &rotated);
    }

    /// `delta` inverts `merge_from` on real per-job snapshots: for any
    /// two job metric slices `a` and `b`, `merged(a, b).delta(a)`
    /// recovers `b` on every additive key, and `.max` keys combine as
    /// the running maximum (the gauge/histogram high-water-mark rule
    /// that keeps merges permutation-invariant across worker counts).
    #[test]
    fn delta_is_the_inverse_of_merge(base in 1u64..500) {
        telemetry::set_mode(telemetry::Mode::Counters);
        let results = run_on(1, &job_set(base));
        let (a, b) = (&results[0].metrics, &results[1].metrics);
        let merged = telemetry::Snapshot::merged([a, b]);
        let recovered = merged.delta(a);
        for (key, merged_v) in merged.iter() {
            if key.ends_with(".max") {
                prop_assert_eq!(
                    merged_v,
                    a.get(key).max(b.get(key)),
                    "`{}` must max-merge", key
                );
            } else {
                prop_assert_eq!(
                    recovered.get(key),
                    b.get(key),
                    "merged.delta(a) must recover b at `{}`", key
                );
            }
        }
    }
}

/// At one worker the flight recorder's live lines are byte-stable: two
/// runs of the same job set produce identical output, including the
/// final summary line. (The `cycles` stamp is simulated time, never
/// wall-clock.)
#[test]
fn live_lines_are_byte_stable_at_one_worker() {
    use std::sync::{Arc, Mutex};
    telemetry::set_mode(telemetry::Mode::Counters);
    let jobs = job_set(42);
    let capture = |jobs: &[JobSpec]| -> Vec<u8> {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let pool = Pool::new(ServeConfig {
            workers: 1,
            flight: Some(FlightConfig {
                interval: 2,
                crash_dir: None,
                sink: LineSink::Buffer(buf.clone()),
            }),
            ..Default::default()
        });
        for j in jobs {
            pool.submit(j.clone()).unwrap();
        }
        let results = pool.drain();
        assert_eq!(results.len(), jobs.len());
        pool.shutdown(); // flush the final summary line
        let bytes = buf.lock().unwrap().clone();
        bytes
    };
    let first = capture(&jobs);
    let second = capture(&jobs);
    assert!(!first.is_empty(), "no live lines captured");
    assert_eq!(
        String::from_utf8_lossy(&first),
        String::from_utf8_lossy(&second),
        "live lines differ between identical single-worker runs"
    );
}

#[test]
fn worker_attribution_is_the_only_varying_field() {
    // Sanity outside proptest: with 4 workers more than one worker index
    // appears across a large-enough set (work stealing actually spreads
    // jobs), while ids stay dense and sorted.
    telemetry::set_mode(telemetry::Mode::Counters);
    let jobs: Vec<JobSpec> = (0..16)
        .map(|i| {
            JobSpec::new(
                JobKind::Generate { seed: 100 + i, profile: None, len: 20, crosscheck: false },
                DiffConfig::default(),
            )
        })
        .collect();
    let results = run_on(4, &jobs);
    for (ix, r) in results.iter().enumerate() {
        assert_eq!(r.id, ix as u64);
        assert!(r.worker < 4);
        assert!(r.result.is_ok());
    }
}
