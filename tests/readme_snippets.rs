//! The README's code snippets, compiled and executed verbatim (minus
//! formatting) — documentation that cannot rot.

use tangled_qat::prelude::*;

#[test]
fn readme_word_level_snippet() {
    use tangled_qat::pbp::PbpContext;

    let mut ctx = PbpContext::new(8); // 8-way entangled universe
    let a = ctx.pint_mk(4, 15); //       the constant 15
    let b = ctx.pint_h(4, 0x0f); //      0..15 superposed on channels 0-3
    let c = ctx.pint_h(4, 0xf0); //      0..15 superposed on channels 4-7
    let d = ctx.pint_mul(&b, &c); //     all 256 products, at once
    let e = ctx.pint_eq(&d, &a); //      a pbit: "b*c == 15"
    let values: Vec<u64> = ctx
        .pint_measure_where(&b, &e)
        .into_iter()
        .map(|v| v.value)
        .collect();
    assert_eq!(values, vec![1, 3, 5, 15]);
}

#[test]
fn readme_compiled_snippet() -> Result<(), Box<dyn std::error::Error>> {
    let prog = gatec::factor::compile_factoring(15, 4, &Compiler::default())?;
    let img = assemble(&prog.asm)?;
    let mut sim = PipelinedSim::new(
        Machine::with_image(Default::default(), &img.words),
        PipelineConfig::default(),
    );
    let stats = sim.run()?;
    assert_eq!((sim.machine.regs[0], sim.machine.regs[1]), (5, 3));
    assert!(stats.cpi() > 1.0 && stats.cpi() < 2.0);
    Ok(())
}

#[test]
fn prelude_covers_the_advertised_types() {
    // Every name the prelude promises must exist and be usable.
    let _m: Machine = Machine::new(Default::default());
    let _c: QatConfig = QatConfig::paper();
    let _q: QatCoprocessor = QatCoprocessor::new(QatConfig::student());
    let _a: Aob = Aob::hadamard(8, 2);
    let mut ctx: PbpContext = PbpContext::new(8);
    let p: Pint = ctx.pint_mk(4, 7);
    assert_eq!(p.width(), 4);
    let _prog: PintProgram = PintProgram::new();
    let img = assemble("sys\n").unwrap();
    let mut mc: MultiCycleSim =
        MultiCycleSim::new(Machine::with_image(Default::default(), &img.words));
    mc.run().unwrap();
}
