//! E11: the §3.1 implementation claims, as executable checks.

use tangled_qat::asm::assemble;
use tangled_qat::qat::QatConfig;
use tangled_qat::sim::{
    Machine, MachineConfig, MultiCycleSim, PipelineConfig, PipelinedSim, StageCount,
};

fn pipe(src: &str, cfg: PipelineConfig) -> PipelinedSim {
    let img = assemble(src).unwrap();
    let mcfg = MachineConfig { qat: QatConfig::with_ways(8), ..Default::default() };
    PipelinedSim::new(Machine::with_image(mcfg, &img.words), cfg)
}

#[test]
fn claim_sustained_one_instruction_per_cycle() {
    // "All implementations were capable of sustaining completion of one
    // instruction every clock cycle, provided there were no pipeline
    // interlocks encountered."
    let mut src = String::new();
    for i in 0..256 {
        src.push_str(&format!("lex ${},{}\n", i % 8, i % 128));
    }
    src.push_str("sys\n");
    for (stages, depth) in [(StageCount::Four, 4u64), (StageCount::Five, 5)] {
        let cfg = PipelineConfig { stages, forwarding: true, ..Default::default() };
        let mut p = pipe(&src, cfg);
        let st = p.run().unwrap();
        // Exactly depth-1 startup cycles beyond one per instruction.
        assert_eq!(st.cycles, st.insns + depth - 1, "{stages:?}");
        assert_eq!(st.data_stalls, 0);
        assert_eq!(st.control_stalls, 0);
    }
}

#[test]
fn claim_four_and_five_stage_organizations_both_work() {
    // "Six of the eight pipelines the students implemented used four
    // stages; two used five stages." Both organizations must be
    // architecturally indistinguishable.
    let src = "\
        lex $1,5\nlex $2,-1\n\
        loop: had @3,2\nlex $4,10\nnext $4,@3\nadd $1,$2\nbrt $1,loop\nsys\n";
    let mut results = Vec::new();
    for stages in [StageCount::Four, StageCount::Five] {
        for forwarding in [true, false] {
            let mut p = pipe(src, PipelineConfig { stages, forwarding, ..Default::default() });
            p.run().unwrap();
            results.push(p.machine.regs);
        }
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn claim_variable_length_fetch_is_handled() {
    // "The most common student questions involved the fetch and decode
    // handling of variable-length instructions." A stream alternating
    // one- and two-word instructions must execute correctly and cost
    // exactly one extra cycle per second word.
    let mut src = String::new();
    for i in 0..40 {
        if i % 2 == 0 {
            src.push_str(&format!("lex ${},1\n", i % 8));
        } else {
            src.push_str(&format!("and @{},@1,@2\n", 3 + i));
        }
    }
    src.push_str("sys\n");
    let mut p = pipe(&src, PipelineConfig::default());
    let st = p.run().unwrap();
    assert_eq!(st.two_word_insns, 20);
    assert_eq!(st.fetch_extra, 20);
    assert_eq!(st.cycles, (st.insns + 20) + 3); // 1/instr + bubbles + fill
}

#[test]
fn claim_interlocks_from_coprocessor_operations() {
    // "processor pipeline interlocks and forwarding are determined in part
    // by coprocessor operations": a meas result consumed immediately must
    // stall without forwarding and not with it.
    let src = "had @5,0\nlex $1,3\nmeas $1,@5\nadd $1,$1\nsys\n";
    let fw = {
        let mut p = pipe(src, PipelineConfig { stages: StageCount::Four, forwarding: true, ..Default::default() });
        p.run().unwrap()
    };
    let nofw = {
        let mut p = pipe(src, PipelineConfig { stages: StageCount::Four, forwarding: false, ..Default::default() });
        p.run().unwrap()
    };
    assert_eq!(fw.data_stalls, 0);
    assert!(nofw.data_stalls > 0);
    assert!(nofw.cycles > fw.cycles);
}

#[test]
fn multicycle_vs_pipeline_speedup_shape() {
    // The pipelined design must beat multi-cycle by roughly the depth on
    // hazard-free code (the whole point of pipelining).
    let mut src = String::new();
    for i in 0..300 {
        src.push_str(&format!("lex ${},2\n", i % 8));
    }
    src.push_str("sys\n");
    let img = assemble(&src).unwrap();
    let mcfg = MachineConfig { qat: QatConfig::with_ways(8), ..Default::default() };
    let mut mc = MultiCycleSim::new(Machine::with_image(mcfg, &img.words));
    let mst = mc.run().unwrap();
    let mut p = pipe(&src, PipelineConfig::default());
    let pst = p.run().unwrap();
    let speedup = mst.cycles as f64 / pst.cycles as f64;
    assert!(
        (3.5..=4.0).contains(&speedup),
        "4-deep pipeline speedup should approach 4x, got {speedup:.2}"
    );
}

#[test]
fn branch_penalty_matches_two_bubble_design() {
    // Predict-not-taken with EX resolution: 2 bubbles per taken branch.
    let taken = 100u64;
    let src = format!("li $1,{taken}\nlex $2,-1\nloop: add $1,$2\nbrt $1,loop\nsys\n");
    let mut p = pipe(&src, PipelineConfig::default());
    let st = p.run().unwrap();
    assert_eq!(st.taken, taken - 1);
    assert_eq!(st.control_stalls, 2 * (taken - 1));
}
