//! Failure-injection tests: every simulator surfaces faults (illegal
//! opcodes, truncated instructions, coprocessor violations, runaway loops)
//! as typed errors with the faulting PC — never a panic, never silence.

use tangled_qat::asm::assemble;
use tangled_qat::isa::DecodeError;
use tangled_qat::qat::{QatConfig, QatError};
use tangled_qat::sim::{
    Machine, MachineConfig, MultiCycleSim, PipelineConfig, PipelinedSim, SimError,
};

fn cfg(ways: u32) -> MachineConfig {
    MachineConfig { qat: QatConfig::with_ways(ways), max_steps: 10_000 }
}

#[test]
fn illegal_opcode_faults_every_model() {
    // 0xF000 is an undefined major opcode.
    let words = [0x4001u16 /* lex $0,1 */, 0xF000];
    let expect = |e: SimError| {
        assert!(
            matches!(e, SimError::Decode { pc: 1, err: DecodeError::Illegal { .. } }),
            "{e:?}"
        );
    };
    let mut m = Machine::with_image(cfg(8), &words);
    expect(m.run().unwrap_err());
    let mut mc = MultiCycleSim::new(Machine::with_image(cfg(8), &words));
    expect(mc.run().unwrap_err());
    let mut p = PipelinedSim::new(Machine::with_image(cfg(8), &words), PipelineConfig::default());
    expect(p.run().unwrap_err());
}

#[test]
fn truncated_two_word_instruction_at_end_of_memory() {
    // Place the first word of a two-word Qat instruction at the last
    // memory address.
    let mut m = Machine::new(cfg(8));
    m.mem[0xFFFF] = 0xD000; // and @a,... missing second word
    m.pc = 0xFFFF;
    let e = m.step().unwrap_err();
    assert!(
        matches!(e, SimError::Decode { pc: 0xFFFF, err: DecodeError::Truncated { .. } }),
        "{e:?}"
    );
}

#[test]
fn constant_register_write_faults_with_pc() {
    let img = assemble("zero @200\nhad @3,1\nsys\n").unwrap();
    let mcfg = MachineConfig {
        qat: QatConfig { constant_registers: true, ..QatConfig::with_ways(8) },
        max_steps: 10_000,
    };
    // @200 is fine (unreserved); @3 = H(1) is reserved -> fault at word 1.
    let mut m = Machine::with_image(mcfg, &img.words);
    let e = m.run().unwrap_err();
    assert!(
        matches!(
            e,
            SimError::Qat { pc: 1, err: QatError::ConstantRegisterWrite { .. } }
        ),
        "{e:?}"
    );
}

#[test]
fn runaway_program_hits_step_limit_not_hang() {
    let img = assemble("loop: br loop\n").unwrap();
    for pipelined in [false, true] {
        let e = if pipelined {
            PipelinedSim::new(Machine::with_image(cfg(8), &img.words), PipelineConfig::default())
                .run()
                .unwrap_err()
        } else {
            Machine::with_image(cfg(8), &img.words).run().unwrap_err()
        };
        assert_eq!(e, SimError::StepLimit);
    }
}

#[test]
fn fault_preserves_prior_architectural_state() {
    // State up to the fault must be observable for debugging.
    let words = {
        let img = assemble("lex $1,42\nlex $2,7\n.word 0xF000\n").unwrap();
        img.words
    };
    let mut m = Machine::with_image(cfg(8), &words);
    let e = m.run().unwrap_err();
    assert!(matches!(e, SimError::Decode { pc: 2, .. }));
    assert_eq!(m.regs[1], 42);
    assert_eq!(m.regs[2], 7);
    assert_eq!(m.pc, 2);
    assert!(!m.halted);
}

#[test]
fn run_after_fault_reports_again_not_corrupt() {
    let words = [0xF000u16];
    let mut m = Machine::with_image(cfg(8), &words);
    let e1 = m.run().unwrap_err();
    let e2 = m.run().unwrap_err();
    assert_eq!(e1, e2, "faults are repeatable, not state-corrupting");
}
