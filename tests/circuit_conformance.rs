//! E6/E7 at the gate level, property-tested: the structural Figure 7/8
//! circuits agree with the behavioural AoB operations on arbitrary inputs.

use proptest::prelude::*;
use tangled_qat::aob::Aob;
use tangled_qat::qat::circuit::{qathad_circuit, qatnext_circuit};
use tangled_qat::qat::cost::OrReduction;

fn aob(ways: u32) -> impl Strategy<Value = Aob> {
    proptest::collection::vec(any::<u64>(), Aob::words_for(ways)).prop_map(move |ws| {
        let mut v = Aob::zeros(ways);
        v.words_mut().copy_from_slice(&ws);
        v.normalize();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qatnext_circuit_matches_behavioural(a in aob(8), s in 0u64..256) {
        for style in [OrReduction::TreeOr, OrReduction::WideOr] {
            let (r, stats) = qatnext_circuit(&a, s, style);
            // The circuit emits the ISA's in-band encoding (0 = none).
            prop_assert_eq!(r, a.next(s).unwrap_or(0), "{:?}", style);
            prop_assert!(stats.gates > 0);
            prop_assert!(stats.depth > 0);
        }
    }

    #[test]
    fn qatnext_or_style_never_changes_the_answer(a in aob(6), s in 0u64..64) {
        let (r1, st1) = qatnext_circuit(&a, s, OrReduction::TreeOr);
        let (r2, st2) = qatnext_circuit(&a, s, OrReduction::WideOr);
        prop_assert_eq!(r1, r2);
        // The implementations differ only in delay, never in gate output.
        prop_assert!(st1.depth >= st2.depth);
    }

    #[test]
    fn qathad_circuit_matches_every_select(ways in 4u32..9, h in 0u16..16) {
        let (v, stats) = qathad_circuit(ways, h);
        prop_assert_eq!(v, Aob::hadamard(ways, h as u32));
        prop_assert_eq!(stats.depth, 4); // 16:1 mux tree
    }
}

#[test]
fn full_16way_next_circuit_once() {
    // One full-size (65,536-bit) structural evaluation of the paper's
    // worked example — slow enough to run once, not under proptest.
    let a = Aob::hadamard(16, 4);
    let (r, stats) = qatnext_circuit(&a, 42, OrReduction::WideOr);
    assert_eq!(r, 48);
    // 2×16 shifter stages over 65,535 bits dominate the gate count.
    assert!(stats.gates > 2_000_000);
    assert!(stats.depth >= 32);
}
