//! E9/E10/E15: the paper's §4 prime-factoring evaluation, end to end on
//! every execution path.

use tangled_qat::asm::assemble;
use tangled_qat::gatec::factor::{compile_factoring, FIGURE_10};
use tangled_qat::gatec::{AllocStrategy, Compiler, EmitOptions};
use tangled_qat::pbp::{PbpContext, Pint};
use tangled_qat::qat::QatConfig;
use tangled_qat::sim::{
    Machine, MachineConfig, MultiCycleSim, PipelineConfig, PipelinedSim, StageCount,
};

fn machine(words: &[u16], ways: u32) -> Machine {
    let cfg = MachineConfig { qat: QatConfig::with_ways(ways), ..Default::default() };
    Machine::with_image(cfg, words)
}

#[test]
fn fig9_word_level_factoring_prints_paper_values() {
    let mut ctx = PbpContext::new(8);
    let a = ctx.pint_mk(4, 15);
    let b = ctx.pint_h(4, 0x0f);
    let c = ctx.pint_h(4, 0xf0);
    let d = ctx.pint_mul(&b, &c);
    let e = ctx.pint_eq(&d, &a);
    let e_pint = Pint::from_bits(vec![e]);
    let f = ctx.pint_mul(&e_pint, &b);
    let printed: Vec<u64> = ctx.pint_measure(&f).into_iter().map(|v| v.value).collect();
    assert_eq!(printed, vec![0, 1, 3, 5, 15]);
}

#[test]
fn fig10_verbatim_on_functional_simulator() {
    // The paper's student implementations ran at 8-way; the author's at
    // 16-way. Both must produce $0 = 5, $1 = 3.
    let src = format!("{FIGURE_10}sys\n");
    for ways in [8u32, 16] {
        let img = assemble(&src).unwrap();
        let mut m = machine(&img.words, ways);
        m.run().unwrap();
        assert_eq!((m.regs[0], m.regs[1]), (5, 3), "ways={ways}");
    }
}

#[test]
fn fig10_answer_channels_are_exactly_the_factor_pairs() {
    // e = @80 must be 1 exactly on channels c<<4|b with b*c == 15
    // (mod 256 at 8-way).
    let src = format!("{FIGURE_10}sys\n");
    let img = assemble(&src).unwrap();
    let mut m = machine(&img.words, 8);
    m.run().unwrap();
    let e = m.qat.reg(tangled_qat::isa::QReg(80));
    for ch in 0..256u64 {
        let (b, c) = (ch & 15, ch >> 4);
        assert_eq!(e.get(ch), b * c == 15, "channel {ch}");
    }
}

#[test]
fn fig10_on_all_cycle_accurate_models() {
    let src = format!("{FIGURE_10}sys\n");
    let img = assemble(&src).unwrap();

    let mut mc = MultiCycleSim::new(machine(&img.words, 8));
    mc.run().unwrap();
    assert_eq!((mc.machine.regs[0], mc.machine.regs[1]), (5, 3));

    for stages in [StageCount::Four, StageCount::Five] {
        for forwarding in [true, false] {
            let cfg = PipelineConfig { stages, forwarding, ..Default::default() };
            let mut p = PipelinedSim::new(machine(&img.words, 8), cfg);
            let st = p.run().unwrap();
            assert_eq!((p.machine.regs[0], p.machine.regs[1]), (5, 3), "{cfg:?}");
            // §3.1: the program is dominated by two-word Qat instructions,
            // so CPI sits between 1 and 2 — and every model agrees on the
            // instruction count.
            assert_eq!(st.insns, mc.machine.steps);
            assert!(st.cpi() < 2.0, "cpi {}", st.cpi());
        }
    }
}

#[test]
fn compiled_factoring_matches_figure10_results() {
    let prog = compile_factoring(15, 4, &Compiler::default()).unwrap();
    let img = assemble(&prog.asm).unwrap();
    let mut m = machine(&img.words, 8);
    m.run().unwrap();
    assert_eq!((m.regs[0], m.regs[1]), (5, 3));
    // e register agrees channel-for-channel with Figure 10's @80.
    let e = m.qat.reg(tangled_qat::isa::QReg(prog.e_reg));
    for ch in 0..256u64 {
        let (b, c) = (ch & 15, ch >> 4);
        assert_eq!(e.get(ch), b * c == 15, "channel {ch}");
    }
}

#[test]
fn factoring_221_needs_and_uses_16_way() {
    let prog = compile_factoring(221, 8, &Compiler::default()).unwrap();
    let img = assemble(&prog.asm).unwrap();
    let mut m = machine(&img.words, 16);
    m.run().unwrap();
    assert_eq!((m.regs[0], m.regs[1]), (17, 13));
}

#[test]
fn factoring_under_every_compiler_configuration() {
    for strategy in [AllocStrategy::GreedyFresh, AllocStrategy::LinearScanReuse] {
        for constant_registers in [false, true] {
            let compiler = Compiler {
                strategy,
                emit: EmitOptions { constant_registers, ways: 8 },
            };
            let prog = compile_factoring(15, 4, &compiler)
                .unwrap_or_else(|e| panic!("{strategy:?}/{constant_registers}: {e}"));
            let img = assemble(&prog.asm).unwrap();
            let cfg = MachineConfig {
                qat: QatConfig { constant_registers, ..QatConfig::with_ways(8) },
                ..Default::default()
            };
            let mut m = Machine::with_image(cfg, &img.words);
            m.run().unwrap();
            assert_eq!(
                (m.regs[0], m.regs[1]),
                (5, 3),
                "{strategy:?} constant_registers={constant_registers}"
            );
        }
    }
}

#[test]
fn reversible_macro_mode_runs_figure10_identically() {
    // Assembling Figure 10 with the §5 macro expansions must not change
    // the computed factors (cnot/ccnot/swap/cswap don't appear in Fig 10,
    // but the mode must at minimum be transparent).
    let src = format!("{FIGURE_10}sys\n");
    let opts = tangled_qat::asm::AsmOptions { expand_reversible: true, ..Default::default() };
    let img = tangled_qat::asm::assemble_with(&src, &opts).unwrap();
    let mut m = machine(&img.words, 8);
    m.run().unwrap();
    assert_eq!((m.regs[0], m.regs[1]), (5, 3));
}

#[test]
fn pbp_and_gate_compiler_agree_on_e_for_many_moduli() {
    // Differential: the symbolic RE engine and the compiled netlist
    // produce the identical predicate for several n.
    for (n, w) in [(6u64, 3usize), (9, 4), (15, 4), (21, 5), (25, 5)] {
        let universe = (2 * w) as u32;
        // PBP path.
        let mut ctx = PbpContext::new(universe.max(6));
        let target = ctx.pint_mk(w, n);
        let b = ctx.pint_h_auto(w);
        let c = ctx.pint_h_auto(w);
        let d = ctx.pint_mul(&b, &c);
        let e_re = ctx.pint_eq(&d, &target);
        // Netlist path.
        let prog = tangled_qat::gatec::factor::build_factoring(n, w, true);
        let (nl, outs) = prog.optimized();
        let e_node = outs.iter().find(|(name, _)| name == "e").unwrap().1;
        let vals = nl.evaluate_aob(universe.max(6), &[e_node]);
        assert_eq!(ctx.to_aob(&e_re), vals[0], "n={n}");
    }
}

#[test]
fn fig10_transcription_instruction_mix() {
    // Static fingerprint of the verbatim Figure 10 listing: 90 lines —
    // 83 Qat gate operations (8 had, 39 Qat and, 20 xor, 14 or, 2 not)
    // plus the 7-instruction hand-written read-out tail (2 lex, 2 next,
    // 1 copy, 2 Tangled and). Guards the transcription against edits.
    let mut counts = std::collections::BTreeMap::new();
    let mut qat_and = 0;
    let mut tangled_and = 0;
    for line in FIGURE_10.lines().filter(|l| !l.trim().is_empty()) {
        let mut parts = line.split_whitespace();
        let mnemonic = parts.next().unwrap();
        *counts.entry(mnemonic).or_insert(0u32) += 1;
        if mnemonic == "and" {
            if parts.next().unwrap().starts_with('@') {
                qat_and += 1;
            } else {
                tangled_and += 1;
            }
        }
    }
    assert_eq!(counts["had"], 8);
    assert_eq!(counts["and"], 41);
    assert_eq!(qat_and, 39);
    assert_eq!(tangled_and, 2);
    assert_eq!(counts["xor"], 20);
    assert_eq!(counts["or"], 14);
    assert_eq!(counts["not"], 2);
    assert_eq!(counts["lex"], 2);
    assert_eq!(counts["next"], 2);
    assert_eq!(counts["copy"], 1);
    let total: u32 = counts.values().sum();
    assert_eq!(total, 90);
    // All 8 Hadamard dimensions H(0..8) appear exactly once.
    let hads: std::collections::BTreeSet<&str> = FIGURE_10
        .lines()
        .filter(|l| l.starts_with("had"))
        .map(|l| l.split(',').nth(1).unwrap().trim())
        .collect();
    assert_eq!(
        hads,
        ["0", "1", "2", "3", "4", "5", "6", "7"].into_iter().collect()
    );
}
