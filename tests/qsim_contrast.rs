//! E14: the paper's quantum-vs-PBP contrasts (§2.2, §2.7), executed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tangled_qat::aob::Aob;
use tangled_qat::pbp::PbpContext;
use tangled_qat::qsim::{expected_runs_to_collect_all, runs_to_collect_all, QState};

/// The factoring-of-15 answer channels (b | c<<4).
const ANSWERS: [u64; 4] = [31, 53, 83, 241];

#[test]
fn pbp_measurement_is_nondestructive_quantum_is_not() {
    // PBP: measure the same pbit 1000 times; identical every time.
    let v = {
        let mut a = Aob::zeros(8);
        for &c in &ANSWERS {
            a.set(c, true);
        }
        a
    };
    let first = v.enumerate_ones();
    for _ in 0..1000 {
        assert_eq!(v.enumerate_ones(), first);
    }

    // Quantum: the first measurement collapses; subsequent measurements
    // repeat the collapsed value, the rest of the superposition is gone.
    let mut rng = StdRng::seed_from_u64(99);
    let mut s = QState::uniform_over(8, &ANSWERS);
    let m1 = s.measure_all(&mut rng);
    for _ in 0..10 {
        assert_eq!(s.measure_all(&mut rng), m1);
    }
}

#[test]
fn quantum_needs_many_runs_pbp_needs_one() {
    // "only one [value] can be examined per run" — collecting all four
    // factors of 15 takes ~8.3 expected quantum runs vs exactly 1 PBP pass.
    let theory = expected_runs_to_collect_all(4);
    assert!((theory - 25.0 / 3.0).abs() < 1e-9);

    let s = QState::uniform_over(8, &ANSWERS);
    let mut rng = StdRng::seed_from_u64(5);
    let trials = 300;
    let mean = (0..trials)
        .map(|_| runs_to_collect_all(&s, &ANSWERS, &mut rng))
        .sum::<u64>() as f64
        / trials as f64;
    assert!((mean - theory).abs() < 1.2, "mean {mean} vs theory {theory}");

    // The PBP pass:
    let mut ctx = PbpContext::new(8);
    let n = ctx.pint_mk(4, 15);
    let b = ctx.pint_h_auto(4);
    let c = ctx.pint_h_auto(4);
    let d = ctx.pint_mul(&b, &c);
    let e = ctx.pint_eq(&d, &n);
    let factors = ctx.pint_measure_where(&b, &e);
    assert_eq!(factors.len(), 4); // all four, one pass
}

#[test]
fn no_number_of_quantum_runs_guarantees_completeness() {
    // "there is no number of runs sufficient to guarantee that all values
    // … have been seen": the per-trial run counts have unbounded spread —
    // check the empirical distribution has a heavy tail (some trial needs
    // at least 2x the expectation).
    let s = QState::uniform_over(8, &ANSWERS);
    let mut rng = StdRng::seed_from_u64(17);
    let runs: Vec<u64> = (0..300).map(|_| runs_to_collect_all(&s, &ANSWERS, &mut rng)).collect();
    let max = *runs.iter().max().unwrap();
    let min = *runs.iter().min().unwrap();
    assert!(min >= 4); // can never finish in fewer than k runs
    assert!(max >= 16, "tail too light: max {max}");
}

#[test]
fn entangled_partner_locks_on_measurement() {
    // "any qubits entangled with a qubit measured also become locked into
    // their values at that moment" — versus PBP, where reading one pbit
    // leaves its entangled partners fully superposed.
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..20 {
        let mut s = QState::new(2);
        s.h(0);
        s.cnot(0, 1);
        let a = s.measure_qubit(0, &mut rng);
        let b = s.measure_qubit(1, &mut rng);
        assert_eq!(a, b);
    }

    // PBP: the entangled pair (lo = H(0), hi = H(0), perfectly correlated)
    // can be sampled on any channel without locking the others.
    let lo = Aob::hadamard(8, 0);
    let hi = Aob::hadamard(8, 0);
    for e in 0..256u64 {
        assert_eq!(lo.meas(e), hi.meas(e));
    }
    // After reading every channel, the distribution is untouched:
    assert_eq!(lo.pop_all(), 128);
}

#[test]
fn memory_scaling_quantum_vs_pbp() {
    // State vectors cost 16 bytes per amplitude; the RE form costs a few
    // runs for structured values at ANY entanglement.
    assert_eq!(QState::new(16).memory_bytes(), 1 << 20); // 1 MiB at 16 qubits
    let mut ctx = PbpContext::new(32); // 2^32 channels
    let h = ctx.hadamard(31);
    assert!(h.storage_runs() <= 2);
}

#[test]
fn qat_gate_set_mirrors_quantum_gate_set_semantics_on_basis_states() {
    // For classical basis inputs, Qat's gates and the quantum gates agree
    // bit-for-bit (superposition is where the models diverge).
    let mut rng = StdRng::seed_from_u64(11);
    let _ = &mut rng;
    for input in 0..8u64 {
        // Quantum CCNOT on |input>:
        let mut s = QState::new(3);
        for q in 0..3 {
            if (input >> q) & 1 == 1 {
                s.x(q);
            }
        }
        s.ccnot(0, 1, 2);
        let expected = input ^ (((input & 1) & ((input >> 1) & 1)) << 2);
        assert!((s.prob(expected) - 1.0).abs() < 1e-12);

        // Qat ccnot on constant pbits:
        let mut a = if (input >> 2) & 1 == 1 { Aob::ones(6) } else { Aob::zeros(6) };
        let b = if input & 1 == 1 { Aob::ones(6) } else { Aob::zeros(6) };
        let c = if (input >> 1) & 1 == 1 { Aob::ones(6) } else { Aob::zeros(6) };
        a.ccnot_assign(&b, &c);
        assert_eq!(a.any(), (expected >> 2) & 1 == 1);
    }
}
