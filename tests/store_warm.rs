//! Warm-start semantics of ChunkStore snapshots, end to end: a snapshot
//! saved by one run and attached by another must be *semantically
//! invisible* — the factoring demo computes bit-identical architectural
//! state warm or cold — while skipping every kernel compile the snapshot
//! already paid for. The serve-pool variant pins the shared read-only
//! attach: many workers, one registered snapshot, identical results.

use tangled_qat::aob::{warm, ChunkStore};
use tangled_qat::asm;
use tangled_qat::qat::{QatConfig, StorageBackend};
use tangled_qat::sim::{Machine, MachineConfig};

const WAYS: u32 = 8;

fn factor15_words() -> Vec<u16> {
    let src = std::fs::read_to_string(format!(
        "{}/examples/asm/factor15.s",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap();
    asm::assemble(&src).unwrap().words
}

fn run(cfg: QatConfig, words: &[u16]) -> Machine {
    let mut m = Machine::with_image(MachineConfig { qat: cfg, ..Default::default() }, words);
    m.run().expect("factoring demo halts");
    m
}

#[test]
fn warm_factoring_is_bit_identical_to_cold_and_compiles_nothing() {
    let words = factor15_words();
    let cold_cfg = QatConfig::with_backend(StorageBackend::Interned, WAYS);
    let cold = run(cold_cfg, &words);

    // Snapshot the cold run's store through the full byte round trip —
    // exactly what `tangled run --store-out` + `--store-in` do across
    // two processes.
    let bytes = cold.qat.store().expect("interned backend has a store").to_bytes();
    let snapshot = ChunkStore::from_bytes(&bytes).expect("own snapshot loads");
    let id = warm::register(snapshot);

    let warm_run = run(QatConfig { warm: Some(id), ..cold_cfg }, &words);
    assert_eq!(warm_run.regs, cold.regs, "architectural registers diverged");
    assert_eq!(warm_run.output, cold.output, "sys output diverged");
    assert_eq!(warm_run.steps, cold.steps);
    assert_eq!(warm_run.pc, cold.pc);

    // The warm run answers every intern and op lookup from the snapshot:
    // zero misses means zero fresh kernel compiles.
    let stats = warm_run.qat.intern_stats().expect("interned backend has stats");
    assert_eq!(stats.misses, 0, "warm run compiled kernels: {stats:?}");
    assert!(stats.hits > 0, "warm run never touched the op cache");

    // Cold-run determinism sanity: a second cold run matches the first.
    let cold2 = run(cold_cfg, &words);
    assert_eq!(cold2.regs, cold.regs);
}

#[test]
fn serve_workers_attach_one_shared_snapshot_via_ambient_default() {
    use tangled_qat::serve::{JobKind, JobResult, JobSpec, Pool, ServeConfig};
    use tangled_qat::sim::difftest::DiffConfig;
    use tangled_qat::telemetry;

    telemetry::set_mode(telemetry::Mode::Counters);
    let words = factor15_words();
    let jobs = |n: u64| -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                kind: JobKind::Run { words: words.clone(), model: "pipeline-4-fw".into() },
                cfg: DiffConfig { ways: WAYS, backend: StorageBackend::Interned, ..Default::default() },
                label: format!("job-{i}"),
            })
            .collect()
    };
    let run_pool = |workers: usize| -> Vec<JobResult> {
        let pool = Pool::new(ServeConfig { workers, ..Default::default() });
        for j in jobs(6) {
            pool.submit(j).unwrap();
        }
        pool.drain()
    };

    // Cold baseline first (no ambient default installed yet).
    let cold = run_pool(2);

    // One process-wide snapshot, installed the way `tangled serve
    // --warm-store` does it; workers pick it up with no per-job handle.
    let seed = run(QatConfig::with_backend(StorageBackend::Interned, WAYS), &words);
    let id = warm::register(seed.qat.store().unwrap().clone());
    warm::install_default(id);
    let base = telemetry::Snapshot::take();
    let warm_results = run_pool(4);
    let delta = telemetry::Snapshot::take().delta(&base);
    warm::clear_default(WAYS);

    for (a, b) in cold.iter().zip(&warm_results) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.result, b.result, "{}: warm serve diverged from cold", a.label);
    }
    let attached = delta.get("store.chunks.attached");
    assert!(
        attached >= 6,
        "every warm job should attach the shared snapshot, counted {attached}"
    );
}
