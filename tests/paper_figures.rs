//! E1, E6, E7: every worked example and figure-level claim in the paper,
//! reproduced exactly.

use tangled_qat::aob::Aob;
use tangled_qat::pbp::PbpContext;

// ---------------------------------------------------------------------
// Figure 1: the AoB model.
// ---------------------------------------------------------------------

#[test]
fn fig1_equiprobable_two_pbit_value() {
    // "the vectors encode the decimal values {0,1,2,3} as four
    // equiprobable values, each having a probability of 1/4"
    let lo = Aob::from_bits(2, 0b1010); // {0,1,0,1} (channel 0 first)
    let hi = Aob::from_bits(2, 0b1100); // {0,0,1,1}
    let mut seen = Vec::new();
    for e in 0..4u64 {
        seen.push(lo.meas(e) as u64 | ((hi.meas(e) as u64) << 1));
    }
    assert_eq!(seen, vec![0, 1, 2, 3]);
}

#[test]
fn fig1_nonuniform_density() {
    // "if the pbit vectors were {0,0,1,0} and {0,0,1,1}, the two-bit values
    // encoded would be {0,0,3,2}, which implies a 50% chance the value is
    // 0, 0% it is 1, 25% it is 2, and 25% it is 3."
    let lo = Aob::from_bits(2, 0b0100);
    let hi = Aob::from_bits(2, 0b1100);
    let mut counts = [0u32; 4];
    for e in 0..4u64 {
        let v = lo.meas(e) as usize | ((hi.meas(e) as usize) << 1);
        counts[v] += 1;
    }
    assert_eq!(counts, [2, 0, 1, 1]);
}

#[test]
fn fig1_run_length_examples() {
    // §1.2: "{0,1,0,1} can reduce to (01)^2 and {0,0,1,1} is 0^2 1^2".
    // At chunk granularity the same patterns compress to 1-2 runs.
    let mut ctx = PbpContext::new(16);
    let h0 = ctx.hadamard(0); // (01)^32768
    let h15 = ctx.hadamard(15); // 0^32768 1^32768
    assert_eq!(h0.storage_runs(), 1); // one repeating chunk symbol
    assert_eq!(h15.storage_runs(), 2); // a zero run then a one run
}

// ---------------------------------------------------------------------
// Figure 7 / §2.3: the Hadamard initializers.
// ---------------------------------------------------------------------

#[test]
fn fig7_had_bit_rule_full_size() {
    // "entanglement channel e in @a would be the value of bit k within the
    // binary representation of the 16-bit number e" — at the hardware's
    // full 65,536-bit size.
    for k in [0u32, 1, 7, 15] {
        let h = Aob::hadamard(16, k);
        for e in [0u64, 1, 255, 256, 32_767, 32_768, 65_535] {
            assert_eq!(h.get(e), (e >> k) & 1 == 1, "k={k} e={e}");
        }
    }
}

#[test]
fn fig7_had_0_and_15_shapes() {
    // "had @a,0 would make every even-numbered entanglement channel 0 and
    // every odd-numbered channel 1."
    let h0 = Aob::hadamard(16, 0);
    assert!(!h0.get(0) && h0.get(1) && !h0.get(2) && h0.get(65_535) && !h0.get(65_534));
    // "The AoB value created by had @a,15 would consist of 32,768 0 bits
    // followed by 32,768 1 bits."
    let h15 = Aob::hadamard(16, 15);
    assert_eq!(h15.pop_after(32_767), 32_768);
    assert_eq!(h15.pop_all(), 32_768);
    assert!(!h15.get(32_767));
    assert!(h15.get(32_768));
}

#[test]
fn fig7_verilog_reference_agrees_with_fast_path() {
    for k in 0..16u32 {
        assert_eq!(Aob::hadamard(16, k), Aob::hadamard_reference(16, k), "k={k}");
    }
}

// ---------------------------------------------------------------------
// Figure 8 / §2.7: next.
// ---------------------------------------------------------------------

#[test]
fn fig8_worked_example() {
    // "had @123,4 creates a repeating pattern of sixteen 0 followed by
    // sixteen 1, and the first non-0 bit after position 42 in that pattern
    // is in entanglement channel 48."
    let a = Aob::hadamard(16, 4);
    // Verify the pattern shape first:
    for e in 0..64u64 {
        assert_eq!(a.get(e), (e / 16) % 2 == 1, "e={e}");
    }
    assert_eq!(a.next(42), Some(48));
}

#[test]
fn fig8_next_zero_means_none() {
    // "If there is no 1 in the remainder of the AoB vector, the value
    // returned is 0." In software the substrate reports a typed `None`;
    // the Qat dispatcher folds it into the ISA's in-band 0 at the GPR
    // boundary.
    let a = Aob::hadamard(16, 15);
    assert_eq!(a.next(65_535), None);
    let z = Aob::zeros(16);
    assert_eq!(z.next(0), None);
    assert_eq!(z.next(42), None);
}

#[test]
fn sec27_any_all_recipes() {
    // The exact ANY/ALL constructions the paper gives, on tricky cases.
    let mut only_ch0 = Aob::zeros(16);
    only_ch0.set(0, true);
    assert!(only_ch0.any_via_next());
    assert!(!only_ch0.all_via_next());

    let mut all_but_ch0 = Aob::ones(16);
    all_but_ch0.set(0, false);
    assert!(all_but_ch0.any_via_next());
    assert!(!all_but_ch0.all_via_next());

    assert!(Aob::ones(16).all_via_next());
    assert!(!Aob::zeros(16).any_via_next());
}

#[test]
fn sec27_pop_split_detects_overflow() {
    // "the number of 1 bits in a 16-way entangled superposition ranges
    // from 0 to 65,536, which is one greater range than fits in a 16-bit
    // Tangled register" — the pop(0)+meas(0) split catches it.
    let full = Aob::ones(16);
    let (low, overflow) = full.pop_via_parts();
    assert_eq!(low, 0);
    assert!(overflow);
    let h = Aob::hadamard(16, 0);
    let (low, overflow) = h.pop_via_parts();
    assert_eq!(low, 32_768);
    assert!(!overflow);
}

// ---------------------------------------------------------------------
// §2.3: constant-register layout proposed in §5.
// ---------------------------------------------------------------------

#[test]
fn sec5_constant_bank_matches_proposal() {
    // "making @0 be 0, @1 be 1, @2 be H(0), @3 be H(1), etc."
    let bank = Aob::constant_bank(16);
    assert_eq!(bank[0], Aob::zeros(16));
    assert_eq!(bank[1], Aob::ones(16));
    for k in 0..16u32 {
        assert_eq!(bank[(2 + k) as usize], Aob::hadamard(16, k));
    }
}

#[test]
fn sec5_reversible_hadamard_via_xor() {
    // "a quantum-like reversible Hadamard operator can be implemented by
    // XOR with a Hadamard constant register" — XOR twice restores.
    let v = Aob::hadamard(16, 3);
    let h7 = Aob::hadamard(16, 7);
    let once = Aob::xor_of(&v, &h7);
    assert_ne!(once, v);
    assert_eq!(Aob::xor_of(&once, &h7), v);
}
