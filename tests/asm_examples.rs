//! Every shipped assembly example must assemble, run to completion on all
//! simulator configurations, and produce its documented output.

use tangled_qat::asm::assemble;
use tangled_qat::qat::QatConfig;
use tangled_qat::sim::{
    Machine, MachineConfig, MultiCycleSim, PipelineConfig, PipelinedSim, StageCount,
};

fn source(name: &str) -> String {
    let path = format!("{}/examples/asm/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn run_everywhere(src: &str) -> Vec<Machine> {
    let img = assemble(src).expect("assembles");
    let mut out = Vec::new();
    let mcfg = MachineConfig { qat: QatConfig::with_ways(8), ..Default::default() };
    let mut m = Machine::with_image(mcfg, &img.words);
    m.run().unwrap();
    out.push(m);
    let mut mc = MultiCycleSim::new(Machine::with_image(mcfg, &img.words));
    mc.run().unwrap();
    out.push(mc.machine);
    for stages in [StageCount::Four, StageCount::Five] {
        for forwarding in [true, false] {
            let cfg = PipelineConfig { stages, forwarding, ..Default::default() };
            let mut p = PipelinedSim::new(Machine::with_image(mcfg, &img.words), cfg);
            p.run().unwrap();
            out.push(p.machine);
        }
    }
    out
}

fn outputs(m: &Machine) -> String {
    m.output.iter().map(|o| o.to_string()).collect::<Vec<_>>().join(" ")
}

#[test]
fn counting_example_everywhere() {
    for m in run_everywhere(&source("counting.s")) {
        assert_eq!(outputs(&m), "5 4 3 2 1");
    }
}

#[test]
fn factor15_example_everywhere() {
    for m in run_everywhere(&source("factor15.s")) {
        assert_eq!(outputs(&m), "5 3");
        assert_eq!((m.regs[3], m.regs[4]), (5, 3));
    }
}

#[test]
fn newton_sqrt_example_everywhere() {
    for m in run_everywhere(&source("newton_sqrt.s")) {
        assert_eq!(outputs(&m), "1.4140625");
    }
}

#[test]
fn all_example_sources_have_docs_and_halt() {
    let dir = format!("{}/examples/asm", env!("CARGO_MANIFEST_DIR"));
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("s") {
            continue;
        }
        count += 1;
        let src = std::fs::read_to_string(&path).unwrap();
        assert!(
            src.lines().next().unwrap_or("").trim_start().starts_with(';'),
            "{path:?} must start with a comment header"
        );
        let machines = run_everywhere(&src);
        assert!(machines.iter().all(|m| m.halted), "{path:?} must halt");
    }
    assert!(count >= 3, "expected at least three assembly examples, found {count}");
}
