//! Engine-layer conformance suite: the registered simulator models × the
//! registered Qat storage backends, over the checked-in reproducer corpus
//! and the paper's factoring demo.
//!
//! [`compare_all`] already sweeps every `ModelRole::Timing` entry of the
//! model registry plus every other backend as an oracle; this suite runs
//! that sweep once per *primary* backend and then pins the resulting
//! reference outcomes equal across backends — so a divergence between
//! storage representations is caught even if it is self-consistent within
//! one backend's model matrix.

use std::path::{Path, PathBuf};

use tangled_qat::asm;
use tangled_qat::qat::{self, QatConfig, StorageBackend};
use tangled_qat::runner;
use tangled_qat::sim::difftest::{capture, compare_all};
use tangled_qat::sim::{model_registry, Machine, MachineConfig, ModelRole, Outcome};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus")
}

#[test]
fn registry_matrix_agrees_on_every_corpus_reproducer() {
    let files = runner::corpus_files(&corpus_dir());
    assert!(files.len() >= 5, "seed corpus expected, found {}", files.len());
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let img = asm::assemble(&text)
            .unwrap_or_else(|e| panic!("{}: assembly failed: {e}", path.display()));
        let mut outcomes: Vec<(StorageBackend, Outcome)> = Vec::new();
        for be in qat::backend_registry() {
            let cfg = runner::corpus_diff_config(&text, be.backend);
            if !be.supports_ways(cfg.ways) {
                continue;
            }
            let out = compare_all(&img.words, &cfg, None)
                .unwrap_or_else(|d| panic!("{} on {}: {d}", path.display(), be.backend));
            outcomes.push((be.backend, out));
        }
        assert!(outcomes.len() >= 2, "{}: not enough backends ran", path.display());
        for pair in outcomes.windows(2) {
            assert_eq!(
                pair[0].1,
                pair[1].1,
                "{}: outcome differs between {} and {}",
                path.display(),
                pair[0].0,
                pair[1].0
            );
        }
    }
}

/// The registry is the single source of truth: every entry resolves by
/// name, and the conformance matrix above exercised every timing model
/// (via `compare_all`) and every backend. Pin the expected tables here so
/// a silently dropped entry fails loudly.
#[test]
fn registries_are_complete() {
    let models: Vec<&str> = model_registry().iter().map(|e| e.name).collect();
    assert_eq!(
        models,
        [
            "functional",
            "multicycle",
            "pipeline-4-fw",
            "pipeline-4-nofw",
            "pipeline-5-fw",
            "pipeline-5-nofw",
            "forwarding-bug"
        ]
    );
    assert_eq!(
        model_registry().iter().filter(|e| e.role == ModelRole::Timing).count(),
        5
    );
    let backends: Vec<&str> = qat::backend_registry().iter().map(|b| b.backend.name()).collect();
    assert_eq!(backends, ["eager", "interned", "sparse-re", "adaptive"]);
}

fn factor15_words() -> Vec<u16> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/asm/factor15.s");
    runner::load_words(path.to_str().unwrap(), false).expect("factoring demo loads")
}

/// §3.3: the RE-compressed register file runs the factoring demo's full
/// gate sequence at 20-way entanglement without ever materializing a
/// 2^20-bit vector, and agrees with eager/interned at ways <= 16.
#[test]
fn factoring_demo_runs_at_20_ways_on_sparse_re() {
    let words = factor15_words();
    let mut machines = Vec::new();
    for (backend, ways) in [
        (StorageBackend::Eager, 8u32),
        (StorageBackend::Interned, 8),
        (StorageBackend::SparseRe, 20),
    ] {
        let mc = MachineConfig {
            qat: QatConfig::with_backend(backend, ways),
            ..Default::default()
        };
        let mut m = Machine::with_image(mc, &words);
        m.run().unwrap_or_else(|e| panic!("{backend} at {ways} ways: {e}"));
        // Figure 10's result, reported through `sys`: the factors of 15.
        let printed: Vec<String> = m.output.iter().map(|r| r.to_string()).collect();
        assert_eq!(printed.join(" "), "5 3", "{backend} at {ways} ways");
        machines.push(m);
    }
    let sparse = machines.last().unwrap();
    // The whole run stayed in RE form: the coprocessor never expanded a
    // register (the meas/next/pop datapath walks runs directly).
    assert_eq!(sparse.qat.materializations(), 0, "sparse-re run materialized");
    // The program's Hadamard lanes are all < 8, so every state is periodic
    // in the low 256 channels: the 20-way predicate register agrees with
    // the 8-way eager baseline channel for channel.
    let eager = &machines[0];
    for e in 0..256u64 {
        assert_eq!(
            eager.qat.storage().meas(80, e),
            sparse.qat.storage().meas(80, e),
            "@80 channel {e}"
        );
    }
    // Eager@8 and interned@8 reach identical full snapshots.
    assert_eq!(capture(&machines[0], None), capture(&machines[1], None));
}

/// The adaptive backend reproduces the factoring demo on both sides of its
/// ways pivot: promotable eager-to-interned at 8 ways, and pinned to the
/// RE-compressed file at 20 ways (where a dense vector would be 2^20 bits).
#[test]
fn factoring_demo_runs_on_adaptive_backend() {
    let words = factor15_words();
    for ways in [8u32, 20] {
        let mc = MachineConfig {
            qat: QatConfig::with_backend(StorageBackend::Adaptive, ways),
            ..Default::default()
        };
        let mut m = Machine::with_image(mc, &words);
        m.run().unwrap_or_else(|e| panic!("adaptive at {ways} ways: {e}"));
        let printed: Vec<String> = m.output.iter().map(|r| r.to_string()).collect();
        assert_eq!(printed.join(" "), "5 3", "adaptive at {ways} ways");
        let stats = m.qat.adaptive_stats().expect("adaptive backend reports stats");
        assert!(stats.gates > 0, "adaptive at {ways} ways observed no gates");
    }
}
