//! Engine-layer conformance suite: the registered simulator models × the
//! registered Qat storage backends, over the checked-in reproducer corpus
//! and the paper's factoring demo.
//!
//! [`compare_all`] already sweeps every `ModelRole::Timing` entry of the
//! model registry plus every other backend as an oracle; this suite runs
//! that sweep once per *primary* backend and then pins the resulting
//! reference outcomes equal across backends — so a divergence between
//! storage representations is caught even if it is self-consistent within
//! one backend's model matrix.

use std::path::{Path, PathBuf};

use tangled_qat::asm;
use tangled_qat::qat::{self, QatConfig, StorageBackend};
use tangled_qat::runner;
use tangled_qat::sim::difftest::{capture, compare_all};
use tangled_qat::sim::{model_registry, Machine, MachineConfig, ModelRole, Outcome};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus")
}

#[test]
fn registry_matrix_agrees_on_every_corpus_reproducer() {
    let files = runner::corpus_files(&corpus_dir());
    assert!(files.len() >= 5, "seed corpus expected, found {}", files.len());
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let img = asm::assemble(&text)
            .unwrap_or_else(|e| panic!("{}: assembly failed: {e}", path.display()));
        let mut outcomes: Vec<(StorageBackend, Outcome)> = Vec::new();
        for be in qat::backend_registry() {
            let cfg = runner::corpus_diff_config(&text, be.backend);
            if !be.supports_ways(cfg.ways) {
                continue;
            }
            let out = compare_all(&img.words, &cfg, None)
                .unwrap_or_else(|d| panic!("{} on {}: {d}", path.display(), be.backend));
            outcomes.push((be.backend, out));
        }
        assert!(outcomes.len() >= 2, "{}: not enough backends ran", path.display());
        for pair in outcomes.windows(2) {
            assert_eq!(
                pair[0].1,
                pair[1].1,
                "{}: outcome differs between {} and {}",
                path.display(),
                pair[0].0,
                pair[1].0
            );
        }
    }
}

/// The registry is the single source of truth: every entry resolves by
/// name, and the conformance matrix above exercised every timing model
/// (via `compare_all`) and every backend. Pin the expected tables here so
/// a silently dropped entry fails loudly.
#[test]
fn registries_are_complete() {
    let models: Vec<&str> = model_registry().iter().map(|e| e.name).collect();
    assert_eq!(
        models,
        [
            "functional",
            "multicycle",
            "pipeline-4-fw",
            "pipeline-4-nofw",
            "pipeline-5-fw",
            "pipeline-5-nofw",
            "forwarding-bug"
        ]
    );
    assert_eq!(
        model_registry().iter().filter(|e| e.role == ModelRole::Timing).count(),
        5
    );
    let backends: Vec<&str> = qat::backend_registry().iter().map(|b| b.backend.name()).collect();
    assert_eq!(backends, ["eager", "interned", "sparse-re", "adaptive"]);
}

fn factor15_words() -> Vec<u16> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/asm/factor15.s");
    runner::load_words(path.to_str().unwrap(), false).expect("factoring demo loads")
}

/// §3.3: the RE-compressed register file runs the factoring demo's full
/// gate sequence at 20-way entanglement without ever materializing a
/// 2^20-bit vector, and agrees with eager/interned at ways <= 16.
#[test]
fn factoring_demo_runs_at_20_ways_on_sparse_re() {
    let words = factor15_words();
    let mut machines = Vec::new();
    for (backend, ways) in [
        (StorageBackend::Eager, 8u32),
        (StorageBackend::Interned, 8),
        (StorageBackend::SparseRe, 20),
    ] {
        let mc = MachineConfig {
            qat: QatConfig::with_backend(backend, ways),
            ..Default::default()
        };
        let mut m = Machine::with_image(mc, &words);
        m.run().unwrap_or_else(|e| panic!("{backend} at {ways} ways: {e}"));
        // Figure 10's result, reported through `sys`: the factors of 15.
        let printed: Vec<String> = m.output.iter().map(|r| r.to_string()).collect();
        assert_eq!(printed.join(" "), "5 3", "{backend} at {ways} ways");
        machines.push(m);
    }
    let sparse = machines.last().unwrap();
    // The whole run stayed in RE form: the coprocessor never expanded a
    // register (the meas/next/pop datapath walks runs directly).
    assert_eq!(sparse.qat.materializations(), 0, "sparse-re run materialized");
    // The program's Hadamard lanes are all < 8, so every state is periodic
    // in the low 256 channels: the 20-way predicate register agrees with
    // the 8-way eager baseline channel for channel.
    let eager = &machines[0];
    for e in 0..256u64 {
        assert_eq!(
            eager.qat.storage().meas(80, e),
            sparse.qat.storage().meas(80, e),
            "@80 channel {e}"
        );
    }
    // Eager@8 and interned@8 reach identical full snapshots.
    assert_eq!(capture(&machines[0], None), capture(&machines[1], None));
}

/// The packed-RLE register file runs the factoring demo at the backend's
/// full 32-way ceiling with bounded memory: no register ever materializes
/// its 2^32-bit explicit form, and the packed periods stay thousands of
/// times smaller than the flat universe.
#[test]
fn factoring_demo_runs_at_32_ways_on_sparse_re() {
    let words = factor15_words();
    let mc = MachineConfig {
        qat: QatConfig::with_backend(StorageBackend::SparseRe, 32),
        ..Default::default()
    };
    let mut m = Machine::with_image(mc, &words);
    m.run().expect("sparse-re at 32 ways");
    let printed: Vec<String> = m.output.iter().map(|r| r.to_string()).collect();
    assert_eq!(printed.join(" "), "5 3", "sparse-re at 32 ways");
    assert_eq!(m.qat.materializations(), 0, "32-way run materialized a register");
    // Bounded memory, concretely: the whole 256-register file fits in a
    // few kilowords of packed commands, versus 2^32 bits (128 Mi u32
    // words) per register eagerly.
    let stats = m.qat.packed_stats().expect("sparse-re reports packed stats");
    assert!(stats.packed_words > 0);
    assert!(
        stats.packed_words < 1 << 16,
        "packed register file blew up: {} words",
        stats.packed_words
    );
    assert!(
        stats.ratio() >= 1.0,
        "packed encoding lost to the flat-run baseline: {:?}",
        stats
    );
}

/// Packed-vs-eager equivalence pin at hardware degrees: a deterministic
/// gate mix over the whole Table 3 set — including the aliased `cswap`
/// corners — leaves bit-identical registers in the packed sparse-re file
/// and the eager oracle at every ways up to the explicit backends' cap.
#[test]
fn packed_sparse_re_matches_eager_below_hw_max_ways() {
    use tangled_qat::isa::{Insn, QReg, Reg};
    let q = QReg;
    let prog = |ways: u32| {
        let mut p = vec![
            Insn::QHad { a: q(0), k: 0 },
            Insn::QHad { a: q(1), k: ways.saturating_sub(1) as u8 },
            Insn::QHad { a: q(2), k: 2 },
            Insn::QOne { a: q(3) },
            Insn::QAnd { a: q(4), b: q(0), c: q(1) },
            Insn::QOr { a: q(5), b: q(4), c: q(2) },
            Insn::QXor { a: q(6), b: q(5), c: q(0) },
            Insn::QNot { a: q(6) },
            Insn::QCnot { a: q(4), b: q(5) },
            Insn::QCnot { a: q(4), b: q(4) }, // aliased: clears
            Insn::QCcnot { a: q(5), b: q(6), c: q(0) },
            Insn::QCcnot { a: q(5), b: q(5), c: q(5) }, // fully aliased
            Insn::QSwap { a: q(4), b: q(5) },
            Insn::QCswap { a: q(5), b: q(6), c: q(1) },
            Insn::QCswap { a: q(2), b: q(2), c: q(0) }, // aliased pair
            Insn::QZero { a: q(3) },
        ];
        p.push(Insn::QHad { a: q(7), k: (ways / 2) as u8 });
        p.push(Insn::QCswap { a: q(7), b: q(6), c: q(7) }); // data = selector
        p
    };
    for ways in [1u32, 3, 6, 8, 12, 16] {
        let mut eager =
            qat::QatCoprocessor::new(QatConfig::with_backend(StorageBackend::Eager, ways));
        let mut sparse =
            qat::QatCoprocessor::new(QatConfig::with_backend(StorageBackend::SparseRe, ways));
        for insn in prog(ways) {
            eager.execute(insn.clone(), 0).unwrap();
            sparse.execute(insn, 0).unwrap();
        }
        for r in 0..8u8 {
            assert_eq!(eager.reg(q(r)), sparse.reg(q(r)), "ways {ways} @{r}");
        }
        // The measurement datapath agrees too, through the ISA encoding.
        for r in [4u8, 5, 6, 7] {
            for d in 0..(1u64 << ways).min(64) {
                let en = eager
                    .execute(Insn::QNext { d: Reg::new(8), a: q(r) }, d as u16)
                    .unwrap();
                let sn = sparse
                    .execute(Insn::QNext { d: Reg::new(8), a: q(r) }, d as u16)
                    .unwrap();
                assert_eq!(en, sn, "ways {ways} @{r} next {d}");
            }
        }
    }
}

/// The adaptive backend reproduces the factoring demo on both sides of its
/// ways pivot: promotable eager-to-interned at 8 ways, and pinned to the
/// RE-compressed file at 20 ways (where a dense vector would be 2^20 bits).
#[test]
fn factoring_demo_runs_on_adaptive_backend() {
    let words = factor15_words();
    for ways in [8u32, 20] {
        let mc = MachineConfig {
            qat: QatConfig::with_backend(StorageBackend::Adaptive, ways),
            ..Default::default()
        };
        let mut m = Machine::with_image(mc, &words);
        m.run().unwrap_or_else(|e| panic!("adaptive at {ways} ways: {e}"));
        let printed: Vec<String> = m.output.iter().map(|r| r.to_string()).collect();
        assert_eq!(printed.join(" "), "5 3", "adaptive at {ways} ways");
        let stats = m.qat.adaptive_stats().expect("adaptive backend reports stats");
        assert!(stats.gates > 0, "adaptive at {ways} ways observed no gates");
    }
}
