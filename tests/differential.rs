//! Tier-1 differential conformance suite.
//!
//! A fixed population of 256 generated programs (64 per profile) runs
//! through the full model matrix — functional, multi-cycle, and the four
//! pipeline configurations — and every architectural field must agree.
//! A deliberately broken model (stale-register forwarding bug) proves the
//! oracle actually discriminates, and the shrinker must cut its reproducer
//! to at most 8 instructions.

use tangled_qat::sim::difftest::{
    compare_all, diff_outcomes, forwarding_bug_diverges, run_forwarding_bug, run_functional,
    DiffConfig,
};
use tangled_qat::sim::proggen::{encode_program, random_program, ProgGenOptions, Profile};
use tangled_qat::sim::{shrink, Coverage, Machine};

/// 64 seeds for each of 4 profiles = 256 programs, all models agree.
#[test]
fn fixed_population_agrees_across_all_models() {
    let mut cov = Coverage::new();
    let profiles = [
        Profile::Balanced,
        Profile::AluHeavy,
        Profile::QatHeavy,
        Profile::BranchHeavy,
    ];
    let cfg = DiffConfig::default();
    for (pi, &profile) in profiles.iter().enumerate() {
        for seed in 0..64u64 {
            let opts = ProgGenOptions { profile, ..Default::default() };
            let prog = random_program(1 + seed + 1000 * pi as u64, &opts);
            cov.note_generated(&prog);
            let words = encode_program(&prog);
            if let Err(d) = compare_all(&words, &cfg, Some(&mut cov)) {
                panic!("profile {profile:?} seed {seed}: {d}");
            }
        }
    }
    // The population itself must be a meaningful workout: every opcode
    // kind executed, both branch directions seen.
    assert_eq!(cov.missing(), Vec::<&str>::new());
    assert!(cov.both_branch_directions());
}

/// Fault-adjacent population: constant-register machines must agree on
/// fault identity and fault PC, not just clean final state.
#[test]
fn fault_adjacent_population_agrees() {
    let cfg = DiffConfig { constant_registers: true, ..Default::default() };
    for seed in 0..32u64 {
        let opts = ProgGenOptions {
            profile: Profile::QatHeavy,
            qreg_floor: 10, // 2 + ways(8) reserved registers
            allow_qat_faults: true,
            ..Default::default()
        };
        let prog = random_program(5000 + seed, &opts);
        let words = encode_program(&prog);
        if let Err(d) = compare_all(&words, &cfg, None) {
            panic!("seed {seed}: {d}");
        }
    }
}

/// Intern-stress population: aliased Qat operands (`cnot @a,@a`, repeated
/// sources) and a narrow Hadamard pool drive the hash-consed register
/// file's hot paths. `compare_all` already reruns every program with
/// interning disabled (the `qat-eager` oracle), so this population is the
/// direct differential check of the memoized gate kernels — and the op
/// cache's counters must replay bit-identically on a fresh store.
#[test]
fn intern_stress_population_agrees_and_counters_replay() {
    let cfg = DiffConfig::default();
    let opts = ProgGenOptions {
        profile: Profile::QatHeavy,
        intern_stress: true,
        ..Default::default()
    };
    let stats_of = |words: &[u16]| {
        let mut m = Machine::with_image(cfg.machine_config(), words);
        let _ = m.run(); // step-limit faults still leave valid stats
        m.qat.intern_stats().expect("diff config interns by default")
    };
    let mut total_hits = 0u64;
    for seed in 0..32u64 {
        let prog = random_program(9000 + seed, &opts);
        let words = encode_program(&prog);
        if let Err(d) = compare_all(&words, &cfg, None) {
            panic!("seed {seed}: {d}");
        }
        let first = stats_of(&words);
        let second = stats_of(&words);
        assert_eq!(first, second, "seed {seed}: counters not deterministic");
        assert_eq!(first.lookups(), first.hits + first.misses);
        total_hits += first.hits;
    }
    assert!(total_hits > 0, "stress population never hit the op cache");
}

/// Negative control: the oracle is not vacuous. A model with a forwarding
/// bug (reads a stale value of the register written one instruction ago)
/// must diverge on the fixed population, and the divergence must shrink
/// to a reproducer of at most 8 instructions.
#[test]
fn broken_oracle_is_caught_and_shrinks_small() {
    let cfg = DiffConfig::default();
    let diverges = |p: &[tangled_qat::isa::Insn]| {
        let words = encode_program(p);
        let reference = run_functional(&words, cfg.machine_config(), None);
        let buggy = run_forwarding_bug(&words, cfg.machine_config());
        diff_outcomes("forwarding-bug", &reference, &buggy).is_some()
    };
    let mut caught = 0;
    for seed in 1..=64u64 {
        let opts = ProgGenOptions { profile: Profile::AluHeavy, ..Default::default() };
        let prog = random_program(seed, &opts);
        if !forwarding_bug_diverges(&prog, &cfg) {
            continue;
        }
        caught += 1;
        let small = shrink(&prog, diverges);
        assert!(
            small.len() <= 8,
            "seed {seed}: reproducer has {} insns: {small:?}",
            small.len()
        );
        assert!(diverges(&small), "seed {seed}: shrunk program no longer diverges");
        if caught >= 8 {
            break;
        }
    }
    assert!(caught >= 4, "forwarding bug caught only {caught} times in 64 seeds");
}
