//! Golden pipeline schedules: hand-computed stage timings for small
//! programs, checked cycle-by-cycle against the timing model. These pin
//! the model's exact behaviour (beyond the aggregate CPI checks).

use tangled_qat::asm::assemble;
use tangled_qat::qat::QatConfig;
use tangled_qat::sim::{
    InsnTiming, Machine, MachineConfig, PipelineConfig, PipelinedSim, StageCount,
};

fn trace_of(src: &str, cfg: PipelineConfig) -> Vec<InsnTiming> {
    let img = assemble(src).unwrap();
    let mcfg = MachineConfig { qat: QatConfig::with_ways(8), ..Default::default() };
    let mut p = PipelinedSim::with_trace(Machine::with_image(mcfg, &img.words), cfg);
    p.run().unwrap();
    p.trace.unwrap()
}

fn stages(t: &InsnTiming) -> (u64, u64, u64, u64) {
    (t.if_start, t.id, t.ex, t.wb)
}

#[test]
fn golden_ideal_diagonal() {
    let t = trace_of("lex $1,1\nlex $2,2\nsys\n", PipelineConfig::default());
    assert_eq!(stages(&t[0]), (0, 1, 2, 3));
    assert_eq!(stages(&t[1]), (1, 2, 3, 4));
    assert_eq!(stages(&t[2]), (2, 3, 4, 5));
}

#[test]
fn golden_two_word_fetch() {
    // and @1,@2,@3 occupies IF at cycles 1 AND 2; everything downstream
    // slips one cycle.
    let t = trace_of("lex $1,1\nand @1,@2,@3\nsys\n", PipelineConfig::default());
    assert_eq!(stages(&t[0]), (0, 1, 2, 3));
    assert_eq!((t[1].if_start, t[1].if_end), (1, 2));
    assert_eq!((t[1].id, t[1].ex, t[1].wb), (3, 4, 5));
    assert_eq!(stages(&t[2]), (3, 4, 5, 6));
}

#[test]
fn golden_no_forwarding_raw_stall() {
    // add depends on lex; without forwarding ID waits for the producer's
    // WB cycle (write-first register file: same-cycle read allowed).
    let cfg = PipelineConfig {
        stages: StageCount::Four,
        forwarding: false,
        ..Default::default()
    };
    let t = trace_of("lex $1,1\nadd $1,$1\nsys\n", cfg);
    assert_eq!(stages(&t[0]), (0, 1, 2, 3)); // lex WB at 3
    assert_eq!(t[1].id, 3); // add reads in the WB cycle
    assert_eq!(t[1].ex, 4);
    assert_eq!(t[1].wb, 5);
}

#[test]
fn golden_taken_branch_redirect() {
    // brt resolves in EX (cycle 3); the target fetch restarts at cycle 4.
    let t = trace_of("lex $1,1\nbrt $1,over\nlex $2,9\nover: sys\n", PipelineConfig::default());
    assert_eq!(stages(&t[1]), (1, 2, 3, 4)); // the branch
    // Next retired instruction is `sys` (the skipped lex never retires).
    assert_eq!(t[2].pc, 3);
    assert_eq!(t[2].if_start, 4);
    assert_eq!(stages(&t[2]), (4, 5, 6, 7));
}

#[test]
fn golden_five_stage_load_use() {
    let cfg = PipelineConfig {
        stages: StageCount::Five,
        forwarding: true,
        ..Default::default()
    };
    let t = trace_of(
        "li $2,0x4000\nstore $1,$2\nload $3,$2\nadd $3,$3\nsys\n",
        cfg,
    );
    // li expands to lex+lhi => instructions: lex, lhi, store, load, add, sys
    let load = &t[3];
    let add = &t[4];
    assert_eq!(add.ex, load.mem + 1, "consumer EX waits for the load's MEM");
    assert_eq!(add.ex - add.id, 2, "exactly one bubble between ID and EX");
}

#[test]
fn golden_multicycle_mul_occupancy() {
    let cfg = PipelineConfig { mul_ex_cycles: 3, ..Default::default() };
    let t = trace_of("lex $1,3\nmul $1,$1\nlex $2,1\nsys\n", cfg);
    let mul = &t[1];
    let lex2 = &t[2];
    // mul enters EX at 3 and holds it through 5; the next instruction's EX
    // cannot start before 6.
    assert_eq!(mul.ex, 3);
    assert_eq!(lex2.ex, 6);
}

#[test]
fn retirement_is_monotone_and_dense_for_ideal_code() {
    let mut src = String::new();
    for i in 0..50 {
        src.push_str(&format!("lex ${},{}\n", i % 8, i));
    }
    src.push_str("sys\n");
    let t = trace_of(&src, PipelineConfig::default());
    for w in t.windows(2) {
        assert_eq!(w[1].wb, w[0].wb + 1);
    }
}
