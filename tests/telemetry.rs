//! Exporter tests for the telemetry subsystem: the `metrics.json` schema,
//! Chrome `trace_event` validity, and run-to-run determinism — all exercised
//! end to end through the `tangled` CLI on the paper's Figure 10 program.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

use tangled_bench::json::Json;

fn asm_path(name: &str) -> String {
    format!("{}/examples/asm/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn out_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tangled-telemetry-{}-{name}", std::process::id()));
    p
}

/// Run `tangled run examples/asm/factor15.s` with the given extra flags and
/// return stdout. Panics (with stderr) if the CLI fails.
fn run_factor15(extra: &[&str]) -> String {
    let mut args = vec!["run".to_string(), asm_path("factor15.s")];
    args.extend(["--ways", "8"].iter().map(|s| s.to_string()));
    args.extend(extra.iter().map(|s| s.to_string()));
    let out = Command::new(env!("CARGO_BIN_EXE_tangled"))
        .args(&args)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "tangled run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn metrics_json_matches_golden_schema() {
    let path = out_path("schema-metrics.json");
    run_factor15(&["--metrics-out", path.to_str().unwrap()]);
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let doc = Json::parse(&text).expect("metrics.json parses");

    assert_eq!(doc["schema"].as_str(), Some("tangled-metrics/v2"));
    assert_eq!(doc["mode"].as_str(), Some("counters"));
    assert!(doc["trace"]["events"].as_u64().is_some());
    assert!(doc["trace"]["dropped"].as_u64().is_some());
    // v2 always carries the quantiles block (empty on this run: the
    // interned CLI path records no histograms; the sparse-re test below
    // checks a populated one).
    assert!(
        matches!(&doc["quantiles"], Json::Obj(_)),
        "quantiles is not an object: {:?}",
        doc["quantiles"]
    );

    let counters = match &doc["counters"] {
        Json::Obj(m) => m,
        other => panic!("counters is not an object: {other:?}"),
    };
    // Every counter the acceptance criteria name must be present: retire
    // counts, stall/flush accounting, per-gate Qat counts, intern hit/miss,
    // and energy totals (telemetry runs turn the energy meter on).
    for key in [
        "tangled.insns",
        "tangled.retire.lex",
        "tangled.retire.sys",
        "tangled.retire.qhad",
        "tangled.retire.qand",
        "pipe.cycles",
        "pipe.stall.data",
        "pipe.stall.control",
        "pipe.flush",
        "pipe.branch.mispredict",
        "qat.gate.qhad",
        "qat.gate.qand",
        "qat.kernel.interned",
        "qat.backend.interned.gates",
        "intern.hits",
        "intern.misses",
        "energy.toggles",
        "energy.writes",
    ] {
        assert!(
            counters.contains_key(key),
            "metrics.json missing counter `{key}`; got keys {:?}",
            counters.keys().collect::<Vec<_>>()
        );
    }
    // Figure 10 retires real work; spot-check a few values are non-zero.
    for key in ["tangled.insns", "qat.gate.qhad", "energy.toggles"] {
        assert!(counters[key].as_u64().unwrap() > 0, "`{key}` is zero");
    }
    let _ = std::fs::remove_file(&path);
}

/// `--metrics-v1` reproduces the legacy document: v1 schema tag, no
/// quantiles block, same counters.
#[test]
fn metrics_v1_flag_emits_legacy_schema() {
    let path = out_path("v1-metrics.json");
    run_factor15(&["--metrics-out", path.to_str().unwrap(), "--metrics-v1"]);
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let doc = Json::parse(&text).expect("metrics.json parses");
    assert_eq!(doc["schema"].as_str(), Some("tangled-metrics/v1"));
    assert!(!text.contains("\"quantiles\""), "v1 document carries a quantiles block");
    let counters = match &doc["counters"] {
        Json::Obj(m) => m,
        other => panic!("counters is not an object: {other:?}"),
    };
    assert!(counters.contains_key("tangled.insns"));
    let _ = std::fs::remove_file(&path);
}

/// The per-backend counter namespace: a sparse-re run lands its gates in
/// `qat.backend.sparse_re.*` / `qat.kernel.sparse_re`, leaves the interned
/// kernels untouched, and never materializes a full vector (the CLI run
/// path only uses the meas/next/pop datapath).
#[test]
fn sparse_re_backend_exports_its_namespace() {
    let path = out_path("sparse-metrics.json");
    let out = Command::new(env!("CARGO_BIN_EXE_tangled"))
        .args([
            "run",
            &asm_path("factor15.s"),
            "--ways",
            "20",
            "--qat-backend",
            "sparse-re",
            "--metrics-out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "tangled run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let doc = Json::parse(&text).expect("metrics.json parses");
    let counters = match &doc["counters"] {
        Json::Obj(m) => m,
        other => panic!("counters is not an object: {other:?}"),
    };
    for key in ["qat.backend.sparse_re.gates", "qat.kernel.sparse_re"] {
        assert!(
            counters.get(key).and_then(|v| v.as_u64()).unwrap_or(0) > 0,
            "`{key}` missing or zero; got keys {:?}",
            counters.keys().collect::<Vec<_>>()
        );
    }
    for key in ["qat.kernel.interned", "qat.backend.interned.gates"] {
        assert!(
            counters.get(key).and_then(|v| v.as_u64()).unwrap_or(0) == 0,
            "`{key}` counted on a sparse-re run"
        );
    }
    assert!(
        counters.get("qat.backend.sparse_re.materialize").and_then(|v| v.as_u64()).unwrap_or(0)
            == 0,
        "sparse-re CLI run materialized a full vector"
    );
    // The packed-RLE compression histograms ride the same export: every
    // RE gate records its command-word footprint and its win over the
    // flat-run baseline under `pbp.re.packed.*`.
    for key in ["pbp.re.packed.words.count", "pbp.re.packed.ratio.count"] {
        assert!(
            counters.get(key).and_then(|v| v.as_u64()).unwrap_or(0) > 0,
            "`{key}` missing or zero; got keys {:?}",
            counters.keys().collect::<Vec<_>>()
        );
    }
    // Ratio samples are flat/packed >= 1: the histogram's running
    // max must be at least 1 and the sum at least the count.
    let ratio_sum = counters.get("pbp.re.packed.ratio.sum").and_then(|v| v.as_u64()).unwrap();
    let ratio_count =
        counters.get("pbp.re.packed.ratio.count").and_then(|v| v.as_u64()).unwrap();
    assert!(
        ratio_sum >= ratio_count,
        "packed encoding regressed below the flat-run baseline: \
         ratio sum {ratio_sum} < count {ratio_count}"
    );
    // The v2 quantile block derives from the same histograms: both
    // packed-RLE families must appear with monotone, non-zero entries.
    for family in ["pbp.re.packed.words", "pbp.re.packed.ratio"] {
        let q = &doc["quantiles"][family];
        let count = q["count"].as_u64().unwrap_or(0);
        assert!(count > 0, "quantiles missing family `{family}`: {text}");
        let (p50, p95, p99) = (
            q["p50"].as_u64().unwrap(),
            q["p95"].as_u64().unwrap(),
            q["p99"].as_u64().unwrap(),
        );
        assert!(p50 >= 1 && p50 <= p95 && p95 <= p99, "{family}: not monotone");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn chrome_trace_is_wellformed_and_monotonic() {
    let path = out_path("validity-trace.json");
    run_factor15(&["--trace-out", path.to_str().unwrap()]);
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let doc = Json::parse(&text).expect("trace parses as JSON");

    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");

    // Metadata names every pipeline stage thread.
    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("M") && e["name"].as_str() == Some("thread_name"))
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    for stage in ["IF", "ID", "EX", "WB"] {
        assert!(thread_names.contains(&stage), "missing thread_name {stage}");
    }

    // Complete events are fully formed, and per-thread they are monotonic
    // and non-overlapping: a stage finishes one instruction before it
    // starts the next.
    let mut per_tid: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    let mut complete = 0usize;
    for e in events {
        match e["ph"].as_str() {
            Some("X") => {
                complete += 1;
                assert!(e["name"].as_str().is_some(), "X event without name");
                assert!(e["cat"].as_str().is_some(), "X event without cat");
                assert!(e["pid"].as_u64().is_some(), "X event without pid");
                let tid = e["tid"].as_u64().expect("X event without tid");
                let ts = e["ts"].as_u64().expect("X event without ts");
                let dur = e["dur"].as_u64().expect("X event without dur");
                assert!(dur > 0, "zero-duration span");
                per_tid.entry(tid).or_default().push((ts, dur));
            }
            Some("i") => {
                assert!(e["ts"].as_u64().is_some(), "instant without ts");
            }
            Some("M") => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(complete > 0, "no complete (ph=X) spans in trace");
    for (tid, spans) in &per_tid {
        for w in spans.windows(2) {
            let ((ts0, dur0), (ts1, _)) = (w[0], w[1]);
            assert!(
                ts0 + dur0 <= ts1,
                "tid {tid}: span at ts={ts0} dur={dur0} overlaps next at ts={ts1}"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// The persistent-artifact counters ride the same `tangled-metrics/v2`
/// export: a `--store-out` run counts `store.save.bytes` and
/// `store.chunks.written`; a `--store-in` run counts `store.load.bytes`
/// and `store.chunks.attached`; and the corpus database counts
/// `corpus.db.entries` / `corpus.db.dedup_hits` through the exact same
/// snapshot-and-export path.
#[test]
fn store_and_corpus_counters_ride_the_v2_export() {
    let snap_path = out_path("store-snap.tgls");
    let (m_cold, m_warm) = (out_path("store-cold.json"), out_path("store-warm.json"));
    run_factor15(&[
        "--store-out",
        snap_path.to_str().unwrap(),
        "--metrics-out",
        m_cold.to_str().unwrap(),
    ]);
    run_factor15(&[
        "--store-in",
        snap_path.to_str().unwrap(),
        "--metrics-out",
        m_warm.to_str().unwrap(),
    ]);
    let counters_of = |p: &PathBuf| {
        let doc = Json::parse(&std::fs::read_to_string(p).unwrap()).unwrap();
        match &doc["counters"] {
            Json::Obj(m) => m.clone(),
            other => panic!("counters is not an object: {other:?}"),
        }
    };
    let cold = counters_of(&m_cold);
    for key in ["store.save.bytes", "store.chunks.written"] {
        assert!(
            cold.get(key).and_then(|v| v.as_u64()).unwrap_or(0) > 0,
            "`{key}` missing or zero in a --store-out run; got keys {:?}",
            cold.keys().collect::<Vec<_>>()
        );
    }
    let warm = counters_of(&m_warm);
    for key in ["store.load.bytes", "store.chunks.attached"] {
        assert!(
            warm.get(key).and_then(|v| v.as_u64()).unwrap_or(0) > 0,
            "`{key}` missing or zero in a --store-in run; got keys {:?}",
            warm.keys().collect::<Vec<_>>()
        );
    }

    // Corpus-database counters flow through the same registry/export
    // plumbing, exercised in-process.
    use tangled_qat::store::{CorpusDb, CorpusEntry};
    use tangled_qat::telemetry::{self, export};
    telemetry::set_mode(telemetry::Mode::Counters);
    let base = telemetry::Snapshot::take();
    let dir = out_path("store-corpusdb");
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = CorpusDb::open(&CorpusDb::dir_path(&dir)).unwrap();
    db.insert(CorpusEntry::from_text("a", "sys\n", 8, false)).unwrap();
    db.insert(CorpusEntry::from_text("b", "add $1,$1\nsys\n", 8, false)).unwrap();
    db.insert(CorpusEntry::from_text("a", "sys\n", 8, false)).unwrap(); // dedup hit
    let delta = telemetry::Snapshot::take().delta(&base);
    let doc = export::MetricsDoc {
        snapshot: &delta,
        mode: telemetry::mode(),
        trace_events: 0,
        trace_dropped: 0,
        v1_compat: false,
    };
    let rendered = Json::parse(&export::metrics_json(&doc)).unwrap();
    let counters = match &rendered["counters"] {
        Json::Obj(m) => m.clone(),
        other => panic!("counters is not an object: {other:?}"),
    };
    assert_eq!(counters.get("corpus.db.entries").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(counters.get("corpus.db.dedup_hits").and_then(|v| v.as_u64()), Some(1));
    assert!(counters.get("store.save.bytes").and_then(|v| v.as_u64()).unwrap_or(0) > 0);
    let _ = std::fs::remove_dir_all(&dir);
    for p in [snap_path, m_cold, m_warm] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn identical_runs_export_identical_snapshots() {
    let (m1, t1) = (out_path("det-m1.json"), out_path("det-t1.json"));
    let (m2, t2) = (out_path("det-m2.json"), out_path("det-t2.json"));
    for (m, t) in [(&m1, &t1), (&m2, &t2)] {
        run_factor15(&[
            "--metrics-out",
            m.to_str().unwrap(),
            "--trace-out",
            t.to_str().unwrap(),
        ]);
    }
    let (a, b) = (std::fs::read(&m1).unwrap(), std::fs::read(&m2).unwrap());
    assert_eq!(a, b, "metrics.json differs between identical runs");
    let (a, b) = (std::fs::read(&t1).unwrap(), std::fs::read(&t2).unwrap());
    assert_eq!(a, b, "chrome trace differs between identical runs");
    for p in [m1, t1, m2, t2] {
        let _ = std::fs::remove_file(p);
    }
}
