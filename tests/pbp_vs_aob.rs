//! E12: the RE-compressed representation is semantically identical to the
//! explicit AoB substrate — property-tested over random values and random
//! operation sequences.

use proptest::prelude::*;
use tangled_qat::aob::Aob;
use tangled_qat::pbp::PbpContext;

/// Strategy: a random AoB of the given degree.
pub fn aob(ways: u32) -> impl Strategy<Value = Aob> {
    proptest::collection::vec(any::<u64>(), Aob::words_for(ways)).prop_map(move |ws| {
        let mut v = Aob::zeros(ways);
        v.words_mut().copy_from_slice(&ws);
        v.normalize();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip(a in aob(10)) {
        let mut ctx = PbpContext::new(10);
        let re = ctx.from_aob(&a);
        prop_assert_eq!(ctx.to_aob(&re), a);
    }

    #[test]
    fn binary_ops_agree(a in aob(9), b in aob(9)) {
        let mut ctx = PbpContext::new(9);
        let (ra, rb) = (ctx.from_aob(&a), ctx.from_aob(&b));
        let and = ctx.and(&ra, &rb);
        prop_assert_eq!(ctx.to_aob(&and), Aob::and_of(&a, &b));
        let or = ctx.or(&ra, &rb);
        prop_assert_eq!(ctx.to_aob(&or), Aob::or_of(&a, &b));
        let xor = ctx.xor(&ra, &rb);
        prop_assert_eq!(ctx.to_aob(&xor), Aob::xor_of(&a, &b));
        let not = ctx.not(&ra);
        prop_assert_eq!(ctx.to_aob(&not), a.not_of());
    }

    #[test]
    fn measurements_agree(a in aob(9), d in 0u64..512) {
        let mut ctx = PbpContext::new(9);
        let re = ctx.from_aob(&a);
        prop_assert_eq!(ctx.re_get(&re, d), a.get(d));
        prop_assert_eq!(ctx.re_next(&re, d), a.next(d));
        prop_assert_eq!(ctx.re_pop_after(&re, d), a.pop_after(d));
        prop_assert_eq!(ctx.re_pop_all(&re), a.pop_all());
        prop_assert_eq!(ctx.re_any(&re), a.any());
        prop_assert_eq!(ctx.re_all(&re), a.all());
    }

    #[test]
    fn enumerate_agree(a in aob(8)) {
        let mut ctx = PbpContext::new(8);
        let re = ctx.from_aob(&a);
        prop_assert_eq!(ctx.re_enumerate_ones(&re, 10_000), a.enumerate_ones());
    }

    #[test]
    fn random_op_sequences_agree(
        seed_ops in proptest::collection::vec((0u8..4, 0usize..6, 0usize..6), 1..25)
    ) {
        // Build parallel universes: 6 slots evolved by the same random ops
        // on both representations.
        let mut ctx = PbpContext::new(10);
        let mut res: Vec<_> = (0..6).map(|k| ctx.hadamard(k as u32)).collect();
        let mut aobs: Vec<_> = (0..6).map(|k| Aob::hadamard(10, k as u32)).collect();
        for (op, i, j) in seed_ops {
            match op {
                0 => {
                    res[i] = ctx.and(&res[i].clone(), &res[j]);
                    aobs[i] = Aob::and_of(&aobs[i], &aobs[j]);
                }
                1 => {
                    res[i] = ctx.or(&res[i].clone(), &res[j]);
                    aobs[i] = Aob::or_of(&aobs[i], &aobs[j]);
                }
                2 => {
                    res[i] = ctx.xor(&res[i].clone(), &res[j]);
                    aobs[i] = Aob::xor_of(&aobs[i], &aobs[j]);
                }
                _ => {
                    res[i] = ctx.not(&res[i].clone());
                    aobs[i] = aobs[i].not_of();
                }
            }
        }
        for (re, a) in res.iter().zip(&aobs) {
            prop_assert_eq!(ctx.to_aob(re), a.clone());
        }
    }

    #[test]
    fn compression_never_loses_information(a in aob(8), b in aob(8)) {
        // xor(x, x) must be exactly zero even through compression.
        let mut ctx = PbpContext::new(8);
        let ra = ctx.from_aob(&a);
        let z = ctx.xor(&ra, &ra);
        prop_assert!(!ctx.re_any(&z));
        // (a ^ b) ^ b == a
        let rb = ctx.from_aob(&b);
        let x = ctx.xor(&ra, &rb);
        let back = ctx.xor(&x, &rb);
        prop_assert!(ctx.re_eq(&back, &ra));
    }
}

#[test]
fn structured_values_compress_far_below_raw_size() {
    // The §1.2 claim quantified: the factoring predicate for 221 at
    // 16-way occupies ~65,536 bits explicitly, but only a handful of
    // runs compressed.
    let mut ctx = PbpContext::new(16);
    let n = ctx.pint_mk(8, 221);
    let b = ctx.pint_h_auto(8);
    let c = ctx.pint_h_auto(8);
    let d = ctx.pint_mul(&b, &c);
    let e = ctx.pint_eq(&d, &n);
    let explicit_bits = 65_536u64;
    let compressed_bits = (e.storage_runs() * 128) as u64; // ~16B/run
    assert!(
        compressed_bits * 4 < explicit_bits,
        "compressed {compressed_bits} vs explicit {explicit_bits}"
    );
    // And the compressed form still measures correctly.
    assert_eq!(ctx.re_pop_all(&e), 4); // exactly 4 factor-pair channels
}

mod three_way {
    use super::aob;
    use proptest::prelude::*;
    use tangled_qat::aob::Aob;
    use tangled_qat::pbp::{PbpContext, TreeCtx};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// All three representations — explicit AoB, flat RE, nested tree —
        /// agree on random operation sequences.
        #[test]
        fn aob_re_tree_agree(
            ops in proptest::collection::vec((0u8..4, 0usize..5, 0usize..5), 1..20)
        ) {
            let ways = 9u32;
            let mut ctx = PbpContext::new(ways);
            let mut tc = TreeCtx::new();
            let mut aobs: Vec<Aob> = (0..5).map(|k| Aob::hadamard(ways, k)).collect();
            let mut res: Vec<_> = (0..5).map(|k| ctx.hadamard(k)).collect();
            let mut trees: Vec<_> = (0..5).map(|k| tc.hadamard(ways, k)).collect();
            for (op, i, j) in ops {
                match op {
                    0 => {
                        aobs[i] = Aob::and_of(&aobs[i], &aobs[j]);
                        res[i] = ctx.and(&res[i].clone(), &res[j]);
                        trees[i] = tc.and(&trees[i].clone(), &trees[j]).unwrap();
                    }
                    1 => {
                        aobs[i] = Aob::or_of(&aobs[i], &aobs[j]);
                        res[i] = ctx.or(&res[i].clone(), &res[j]);
                        trees[i] = tc.or(&trees[i].clone(), &trees[j]).unwrap();
                    }
                    2 => {
                        aobs[i] = Aob::xor_of(&aobs[i], &aobs[j]);
                        res[i] = ctx.xor(&res[i].clone(), &res[j]);
                        trees[i] = tc.xor(&trees[i].clone(), &trees[j]).unwrap();
                    }
                    _ => {
                        aobs[i] = aobs[i].not_of();
                        res[i] = ctx.not(&res[i].clone());
                        trees[i] = tc.not(&trees[i].clone());
                    }
                }
            }
            for k in 0..5 {
                prop_assert_eq!(ctx.to_aob(&res[k]), aobs[k].clone(), "flat RE slot {}", k);
                prop_assert_eq!(tc.to_aob(&trees[k]), aobs[k].clone(), "tree slot {}", k);
                prop_assert_eq!(tc.pop_all(&trees[k]), aobs[k].pop_all());
                for d in [0u64, 1, 63, 64, 255, 511] {
                    prop_assert_eq!(tc.next(&trees[k], d), aobs[k].next(d));
                    prop_assert_eq!(ctx.re_next(&res[k], d), aobs[k].next(d));
                }
            }
        }

        #[test]
        fn tree_roundtrips_random_aob(a in aob(10)) {
            let mut tc = TreeCtx::new();
            let t = tc.from_aob(&a);
            prop_assert_eq!(tc.to_aob(&t), a.clone());
            prop_assert_eq!(tc.pop_all(&t), a.pop_all());
            for d in (0..1024u64).step_by(97) {
                prop_assert_eq!(tc.get(&t, d), a.get(d));
                prop_assert_eq!(tc.next(&t, d), a.next(d));
            }
        }
    }
}
