//! Replay the checked-in minimized-reproducer corpus (`fuzz/corpus/*.s`)
//! through the differential oracle. Every file is a program that once
//! exposed (or canonically represents) a cross-model hazard; they must
//! all assemble and agree across the full model matrix forever — whether
//! discovered through the legacy loose-file layout or the
//! content-addressed `corpus.tsdb` database that replaces it.

use std::path::PathBuf;
use tangled_qat::asm;
use tangled_qat::qat::StorageBackend;
use tangled_qat::runner;
use tangled_qat::sim::difftest::compare_all;
use tangled_qat::sim::Machine;
use tangled_qat::store::{CorpusDb, CorpusEntry};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus")
}

/// A temp-dir corpus database populated from the checked-in loose files —
/// the same migration `tangled corpus import` / `qat-fuzz` perform.
fn imported_db(tag: &str) -> (PathBuf, CorpusDb) {
    let dir = std::env::temp_dir()
        .join(format!("tangled-corpus-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut db = CorpusDb::open(&CorpusDb::dir_path(&dir)).unwrap();
    for path in runner::corpus_files(&corpus_dir()) {
        let text = std::fs::read_to_string(&path).unwrap();
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let mut e = CorpusEntry::from_text(
            &name,
            &text,
            runner::corpus_header(&text, "ways", 8) as u32,
            runner::corpus_header(&text, "constant-registers", 0) != 0,
        );
        e.kind = "imported".to_string();
        db.insert(e).unwrap();
    }
    (dir, db)
}

#[test]
fn corpus_exists_and_replays_clean() {
    let paths = runner::corpus_files(&corpus_dir());
    assert!(
        paths.len() >= 5,
        "expected the seed corpus (>= 5 reproducers), found {}",
        paths.len()
    );
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let img = asm::assemble(&text)
            .unwrap_or_else(|e| panic!("{}: assembly failed: {e}", path.display()));
        let cfg = runner::corpus_diff_config(&text, StorageBackend::Interned);
        if let Err(d) = compare_all(&img.words, &cfg, None) {
            panic!("{}: {d}", path.display());
        }
    }
}

/// Migrating the loose corpus into a `corpus.tsdb` journal loses nothing:
/// discovery flips from the file fallback to the database, the program
/// texts are byte-identical, a second import dedups to a no-op, and a
/// reopened database replays every entry clean through the oracle —
/// loose-file and database replay are the same experiment.
#[test]
fn corpus_db_import_replays_identically_to_loose_files() {
    let loose: Vec<(String, String)> = runner::corpus_files(&corpus_dir())
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            (name, std::fs::read_to_string(&p).unwrap())
        })
        .collect();
    let (dir, mut db) = imported_db("parity");
    assert_eq!(db.len(), loose.len(), "import dropped or invented entries");

    // Discovery now prefers the journal, and the texts match exactly.
    let programs = runner::corpus_programs(&dir).unwrap();
    assert_eq!(programs.len(), loose.len());
    for ((ln, lt), p) in loose.iter().zip(&programs) {
        assert_eq!(&p.label, ln);
        assert_eq!(&p.text, lt, "{ln}: import changed the program bytes");
    }

    // Re-import is a no-op (content addressing), and a fresh open sees
    // the same database.
    for (name, text) in &loose {
        let mut e = CorpusEntry::from_text(name, text, 8, false);
        e.kind = "imported".to_string();
        assert_ne!(
            db.insert(e).unwrap(),
            tangled_qat::store::InsertOutcome::Inserted,
            "{name}: re-import created a duplicate"
        );
    }
    let db2 = CorpusDb::open_existing(&CorpusDb::dir_path(&dir)).unwrap();
    assert_eq!(db2.len(), loose.len());

    // And every database entry replays clean, exactly like the loose run.
    for e in db2.entries() {
        let img = asm::assemble(&e.text)
            .unwrap_or_else(|err| panic!("{}: assembly failed: {err}", e.name));
        let cfg = runner::corpus_diff_config(&e.text, StorageBackend::Interned);
        if let Err(d) = compare_all(&img.words, &cfg, None) {
            panic!("{}: {d}", e.name);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Database-driven replay is byte-deterministic across pool sizes: the
/// same `corpus.tsdb` submitted as differential jobs produces identical
/// per-job payloads and telemetry at 1, 2, and 4 workers.
#[test]
fn corpus_db_replay_is_deterministic_across_worker_counts() {
    use tangled_qat::serve::{JobKind, JobResult, JobSpec, Pool, ServeConfig};
    tangled_qat::telemetry::set_mode(tangled_qat::telemetry::Mode::Counters);
    let (dir, db) = imported_db("workers");
    let jobs: Vec<JobSpec> = db
        .entries()
        .iter()
        .map(|e| {
            let img = asm::assemble(&e.text).unwrap();
            JobSpec {
                kind: JobKind::Differential { words: img.words },
                cfg: runner::corpus_diff_config(&e.text, StorageBackend::Interned),
                label: e.name.clone(),
            }
        })
        .collect();
    let run_on = |workers: usize| -> Vec<JobResult> {
        let pool = Pool::new(ServeConfig { workers, ..Default::default() });
        for j in &jobs {
            pool.submit(j.clone()).unwrap();
        }
        pool.drain()
    };
    let reference = run_on(1);
    assert_eq!(reference.len(), jobs.len());
    for workers in [2usize, 4] {
        let run = run_on(workers);
        for (a, b) in reference.iter().zip(&run) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.label, b.label);
            assert_eq!(a.result, b.result, "job {} differs at {workers} workers", a.label);
            assert_eq!(a.metrics, b.metrics, "metrics of {} differ at {workers} workers", a.label);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The interned register file's cache counters are part of the replayable
/// behavior: two fresh runs of any corpus program must produce identical
/// [`InternStats`], and the counters must satisfy their own arithmetic
/// (`lookups = hits + misses`, the constant bank always interned).
#[test]
fn corpus_intern_counters_replay_deterministically() {
    let mut qat_lookups = 0u64;
    for path in runner::corpus_files(&corpus_dir()) {
        let text = std::fs::read_to_string(&path).unwrap();
        let img = asm::assemble(&text).unwrap();
        let cfg = runner::corpus_diff_config(&text, StorageBackend::Interned);
        let stats_of = || {
            let mut m = Machine::with_image(cfg.machine_config(), &img.words);
            let _ = m.run(); // faulting reproducers still leave valid stats
            m.qat.intern_stats().expect("diff config interns by default")
        };
        let first = stats_of();
        let second = stats_of();
        assert_eq!(first, second, "{}: counters not deterministic", path.display());
        assert_eq!(first.lookups(), first.hits + first.misses, "{}", path.display());
        assert!(
            first.chunks >= (cfg.ways + 2) as u64,
            "{}: constant bank missing from {first:?}",
            path.display()
        );
        qat_lookups += first.lookups();
    }
    // The seed corpus includes Qat reproducers, so at least one program
    // must actually have exercised the op cache.
    assert!(qat_lookups > 0, "no corpus program touched the Qat op cache");
}

/// The packed-RLE encoding is a pure function of the run list: two fresh
/// sparse-re runs of any corpus program must leave bit-identical packed
/// register files — same command-word footprint, same `Repeat` factoring
/// decisions — and identical architectural state. This pins the
/// `RepeatFinder`'s tie-breaking as replayable behavior.
#[test]
fn corpus_packed_encoding_replays_deterministically() {
    let mut packed = 0u64;
    for path in runner::corpus_files(&corpus_dir()) {
        let text = std::fs::read_to_string(&path).unwrap();
        let img = asm::assemble(&text).unwrap();
        let cfg = runner::corpus_diff_config(&text, StorageBackend::SparseRe);
        if !tangled_qat::qat::backend_entry(StorageBackend::SparseRe).supports_ways(cfg.ways) {
            continue;
        }
        let run = || {
            let mut m = Machine::with_image(cfg.machine_config(), &img.words);
            let _ = m.run(); // faulting reproducers still leave valid stats
            m
        };
        let (a, b) = (run(), run());
        let sa = a.qat.packed_stats().expect("sparse-re backend reports packed stats");
        let sb = b.qat.packed_stats().expect("sparse-re backend reports packed stats");
        assert_eq!(sa, sb, "{}: packed encoding not deterministic", path.display());
        assert_eq!(a.regs, b.regs, "{}: register state diverged", path.display());
        assert!(
            sa.flat_words >= sa.packed_words,
            "{}: packed encoding lost to the flat-run baseline: {sa:?}",
            path.display()
        );
        packed += sa.packed_words;
    }
    assert!(packed > 0, "no corpus program left packed registers");
}

/// Adaptive-backend promotion decisions are a pure function of the gate
/// sequence, never of wall-clock or allocation state: two fresh runs of
/// any corpus program must report identical [`pbp_aob::AdaptiveStats`]
/// (same windows probed, same promote/demote choices) and identical
/// architectural state.
#[test]
fn corpus_adaptive_decisions_replay_deterministically() {
    let mut observed = 0u64;
    for path in runner::corpus_files(&corpus_dir()) {
        let text = std::fs::read_to_string(&path).unwrap();
        let img = asm::assemble(&text).unwrap();
        let cfg = runner::corpus_diff_config(&text, StorageBackend::Adaptive);
        let run = || {
            let mut m = Machine::with_image(cfg.machine_config(), &img.words);
            let _ = m.run(); // faulting reproducers still leave valid stats
            m
        };
        let (a, b) = (run(), run());
        let sa = a.qat.adaptive_stats().expect("adaptive backend reports stats");
        let sb = b.qat.adaptive_stats().expect("adaptive backend reports stats");
        assert_eq!(sa, sb, "{}: adaptive decisions not deterministic", path.display());
        assert_eq!(a.regs, b.regs, "{}: register state diverged", path.display());
        observed += sa.gates;
    }
    assert!(observed > 0, "no corpus program drove the adaptive backend");
}
