//! Replay the checked-in minimized-reproducer corpus (`fuzz/corpus/*.s`)
//! through the differential oracle. Every file is a program that once
//! exposed (or canonically represents) a cross-model hazard; they must
//! all assemble and agree across the full model matrix forever.

use std::path::PathBuf;
use tangled_qat::asm;
use tangled_qat::sim::difftest::{compare_all, DiffConfig};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus")
}

/// `; key value` headers let a reproducer pin its machine configuration.
fn header(text: &str, key: &str, default: u64) -> u64 {
    text.lines()
        .filter_map(|l| l.trim().strip_prefix(';'))
        .filter_map(|l| l.trim().strip_prefix(key))
        .find_map(|rest| rest.trim().parse().ok())
        .unwrap_or(default)
}

#[test]
fn corpus_exists_and_replays_clean() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("fuzz/corpus directory is checked in")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 5,
        "expected the seed corpus (>= 5 reproducers), found {}",
        paths.len()
    );
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let img = asm::assemble(&text)
            .unwrap_or_else(|e| panic!("{}: assembly failed: {e}", path.display()));
        let cfg = DiffConfig {
            ways: header(&text, "ways", 8) as u32,
            constant_registers: header(&text, "constant-registers", 0) != 0,
            ..Default::default()
        };
        if let Err(d) = compare_all(&img.words, &cfg, None) {
            panic!("{}: {d}", path.display());
        }
    }
}
