//! Replay the checked-in minimized-reproducer corpus (`fuzz/corpus/*.s`)
//! through the differential oracle. Every file is a program that once
//! exposed (or canonically represents) a cross-model hazard; they must
//! all assemble and agree across the full model matrix forever.

use std::path::PathBuf;
use tangled_qat::asm;
use tangled_qat::qat::StorageBackend;
use tangled_qat::runner;
use tangled_qat::sim::difftest::compare_all;
use tangled_qat::sim::Machine;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus")
}

#[test]
fn corpus_exists_and_replays_clean() {
    let paths = runner::corpus_files(&corpus_dir());
    assert!(
        paths.len() >= 5,
        "expected the seed corpus (>= 5 reproducers), found {}",
        paths.len()
    );
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let img = asm::assemble(&text)
            .unwrap_or_else(|e| panic!("{}: assembly failed: {e}", path.display()));
        let cfg = runner::corpus_diff_config(&text, StorageBackend::Interned);
        if let Err(d) = compare_all(&img.words, &cfg, None) {
            panic!("{}: {d}", path.display());
        }
    }
}

/// The interned register file's cache counters are part of the replayable
/// behavior: two fresh runs of any corpus program must produce identical
/// [`InternStats`], and the counters must satisfy their own arithmetic
/// (`lookups = hits + misses`, the constant bank always interned).
#[test]
fn corpus_intern_counters_replay_deterministically() {
    let mut qat_lookups = 0u64;
    for path in runner::corpus_files(&corpus_dir()) {
        let text = std::fs::read_to_string(&path).unwrap();
        let img = asm::assemble(&text).unwrap();
        let cfg = runner::corpus_diff_config(&text, StorageBackend::Interned);
        let stats_of = || {
            let mut m = Machine::with_image(cfg.machine_config(), &img.words);
            let _ = m.run(); // faulting reproducers still leave valid stats
            m.qat.intern_stats().expect("diff config interns by default")
        };
        let first = stats_of();
        let second = stats_of();
        assert_eq!(first, second, "{}: counters not deterministic", path.display());
        assert_eq!(first.lookups(), first.hits + first.misses, "{}", path.display());
        assert!(
            first.chunks >= (cfg.ways + 2) as u64,
            "{}: constant bank missing from {first:?}",
            path.display()
        );
        qat_lookups += first.lookups();
    }
    // The seed corpus includes Qat reproducers, so at least one program
    // must actually have exercised the op cache.
    assert!(qat_lookups > 0, "no corpus program touched the Qat op cache");
}

/// The packed-RLE encoding is a pure function of the run list: two fresh
/// sparse-re runs of any corpus program must leave bit-identical packed
/// register files — same command-word footprint, same `Repeat` factoring
/// decisions — and identical architectural state. This pins the
/// `RepeatFinder`'s tie-breaking as replayable behavior.
#[test]
fn corpus_packed_encoding_replays_deterministically() {
    let mut packed = 0u64;
    for path in runner::corpus_files(&corpus_dir()) {
        let text = std::fs::read_to_string(&path).unwrap();
        let img = asm::assemble(&text).unwrap();
        let cfg = runner::corpus_diff_config(&text, StorageBackend::SparseRe);
        if !tangled_qat::qat::backend_entry(StorageBackend::SparseRe).supports_ways(cfg.ways) {
            continue;
        }
        let run = || {
            let mut m = Machine::with_image(cfg.machine_config(), &img.words);
            let _ = m.run(); // faulting reproducers still leave valid stats
            m
        };
        let (a, b) = (run(), run());
        let sa = a.qat.packed_stats().expect("sparse-re backend reports packed stats");
        let sb = b.qat.packed_stats().expect("sparse-re backend reports packed stats");
        assert_eq!(sa, sb, "{}: packed encoding not deterministic", path.display());
        assert_eq!(a.regs, b.regs, "{}: register state diverged", path.display());
        assert!(
            sa.flat_words >= sa.packed_words,
            "{}: packed encoding lost to the flat-run baseline: {sa:?}",
            path.display()
        );
        packed += sa.packed_words;
    }
    assert!(packed > 0, "no corpus program left packed registers");
}

/// Adaptive-backend promotion decisions are a pure function of the gate
/// sequence, never of wall-clock or allocation state: two fresh runs of
/// any corpus program must report identical [`pbp_aob::AdaptiveStats`]
/// (same windows probed, same promote/demote choices) and identical
/// architectural state.
#[test]
fn corpus_adaptive_decisions_replay_deterministically() {
    let mut observed = 0u64;
    for path in runner::corpus_files(&corpus_dir()) {
        let text = std::fs::read_to_string(&path).unwrap();
        let img = asm::assemble(&text).unwrap();
        let cfg = runner::corpus_diff_config(&text, StorageBackend::Adaptive);
        let run = || {
            let mut m = Machine::with_image(cfg.machine_config(), &img.words);
            let _ = m.run(); // faulting reproducers still leave valid stats
            m
        };
        let (a, b) = (run(), run());
        let sa = a.qat.adaptive_stats().expect("adaptive backend reports stats");
        let sb = b.qat.adaptive_stats().expect("adaptive backend reports stats");
        assert_eq!(sa, sb, "{}: adaptive decisions not deterministic", path.display());
        assert_eq!(a.regs, b.regs, "{}: register state diverged", path.display());
        observed += sa.gates;
    }
    assert!(observed > 0, "no corpus program drove the adaptive backend");
}
