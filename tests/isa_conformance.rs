//! E2/E3/E4: behavioural conformance of every instruction in Tables 1-3,
//! exercised through the full stack (assembler → encoder → simulator).

use tangled_qat::asm::assemble;
use tangled_qat::bfloat::Bf16;
use tangled_qat::isa::QReg;
use tangled_qat::qat::QatConfig;
use tangled_qat::sim::{Machine, MachineConfig};

fn run(src: &str) -> Machine {
    let img = assemble(src).unwrap_or_else(|e| panic!("{e}"));
    let cfg = MachineConfig { qat: QatConfig::with_ways(8), ..Default::default() };
    let mut m = Machine::with_image(cfg, &img.words);
    m.run().expect("halts");
    m
}

// ---------------------------------------------------------------------
// Table 1, row by row.
// ---------------------------------------------------------------------

#[test]
fn table1_add() {
    // add $d,$s : $d += $s
    assert_eq!(run("lex $1,20\nlex $2,22\nadd $1,$2\nsys\n").regs[1], 42);
    // wrapping
    assert_eq!(run("li $1,0x7FFF\nlex $2,1\nadd $1,$2\nsys\n").regs[1], 0x8000);
}

#[test]
fn table1_addf() {
    // addf: bfloat16 add
    let m = run("lex $1,3\nfloat $1\nlex $2,4\nfloat $2\naddf $1,$2\nint $1\nsys\n");
    assert_eq!(m.regs[1], 7);
}

#[test]
fn table1_and_or_xor_not() {
    let m = run("li $1,0x0FF0\nli $2,0x00FF\nand $1,$2\nsys\n");
    assert_eq!(m.regs[1], 0x00F0);
    let m = run("li $1,0x0F00\nli $2,0x00F0\nor $1,$2\nsys\n");
    assert_eq!(m.regs[1], 0x0FF0);
    let m = run("li $1,0x0FF0\nli $2,0x00FF\nxor $1,$2\nsys\n");
    assert_eq!(m.regs[1], 0x0F0F);
    let m = run("li $1,0x00FF\nnot $1\nsys\n");
    assert_eq!(m.regs[1], 0xFF00);
}

#[test]
fn table1_brf_brt() {
    // brf: branch when condition is false (zero).
    let m = run("lex $1,0\nbrf $1,skip\nlex $2,1\nskip: sys\n");
    assert_eq!(m.regs[2], 0);
    let m = run("lex $1,1\nbrf $1,skip\nlex $2,1\nskip: sys\n");
    assert_eq!(m.regs[2], 1);
    // brt: branch when true (non-zero).
    let m = run("lex $1,1\nbrt $1,skip\nlex $2,1\nskip: sys\n");
    assert_eq!(m.regs[2], 0);
}

#[test]
fn table1_copy() {
    let m = run("lex $1,-77\ncopy $2,$1\nsys\n");
    assert_eq!(m.regs[2] as i16, -77);
    assert_eq!(m.regs[1] as i16, -77); // source unchanged
}

#[test]
fn table1_float_int_roundtrip() {
    let m = run("lex $1,-19\nfloat $1\nint $1\nsys\n");
    assert_eq!(m.regs[1] as i16, -19);
    // float produces the bfloat16 pattern:
    let m = run("lex $1,3\nfloat $1\nsys\n");
    assert_eq!(Bf16(m.regs[1]).to_f32(), 3.0);
}

#[test]
fn table1_jumpr() {
    let m = run("li $1,target\njumpr $1\nlex $2,9\ntarget: sys\n");
    assert_eq!(m.regs[2], 0);
}

#[test]
fn table1_lex_sign_extends() {
    // "$d = {{8{imm8[7]}}, imm8}"
    assert_eq!(run("lex $1,-1\nsys\n").regs[1], 0xFFFF);
    assert_eq!(run("lex $1,127\nsys\n").regs[1], 0x007F);
    assert_eq!(run("lex $1,-128\nsys\n").regs[1], 0xFF80);
}

#[test]
fn table1_lhi_sets_high_byte_only() {
    // "$d[15:8] = imm8"
    let m = run("lex $1,0x34\nlhi $1,0x12\nsys\n");
    assert_eq!(m.regs[1], 0x1234);
    // low byte preserved even when lex loaded negative:
    let m = run("lex $1,-1\nlhi $1,0\nsys\n");
    assert_eq!(m.regs[1], 0x00FF);
}

#[test]
fn table1_load_store() {
    let m = run("li $1,0xABCD\nli $2,0x5000\nstore $1,$2\nlex $3,0\nload $3,$2\nsys\n");
    assert_eq!(m.mem[0x5000], 0xABCD);
    assert_eq!(m.regs[3], 0xABCD);
}

#[test]
fn table1_mul_low_16() {
    assert_eq!(run("lex $1,7\nlex $2,6\nmul $1,$2\nsys\n").regs[1], 42);
    // wrapping low half:
    assert_eq!(run("li $1,0x0100\nli $2,0x0100\nmul $1,$2\nsys\n").regs[1], 0);
}

#[test]
fn table1_mulf_recip_negf() {
    let m = run("lex $1,10\nfloat $1\nlex $2,4\nfloat $2\nrecip $2\nmulf $1,$2\nint $1\nsys\n");
    assert_eq!(m.regs[1], 2); // 10 * (1/4) = 2.5, truncates to 2
    let m = run("lex $1,5\nfloat $1\nnegf $1\nint $1\nsys\n");
    assert_eq!(m.regs[1] as i16, -5);
}

#[test]
fn table1_neg() {
    assert_eq!(run("lex $1,42\nneg $1\nsys\n").regs[1] as i16, -42);
    assert_eq!(run("lex $1,0\nneg $1\nsys\n").regs[1], 0);
    // i16::MIN negates to itself (two's complement wrap):
    assert_eq!(run("li $1,0x8000\nneg $1\nsys\n").regs[1], 0x8000);
}

#[test]
fn table1_shift_left_and_right() {
    // "$d = $d << $s" with negative $s shifting right.
    assert_eq!(run("lex $1,1\nlex $2,10\nshift $1,$2\nsys\n").regs[1], 1 << 10);
    assert_eq!(run("li $1,0x4000\nlex $2,-14\nshift $1,$2\nsys\n").regs[1], 1);
    // Right shift is arithmetic:
    assert_eq!(run("li $1,0x8000\nlex $2,-15\nshift $1,$2\nsys\n").regs[1], 0xFFFF);
}

#[test]
fn table1_slt() {
    assert_eq!(run("lex $1,-3\nlex $2,5\nslt $1,$2\nsys\n").regs[1], 1);
    assert_eq!(run("lex $1,5\nlex $2,5\nslt $1,$2\nsys\n").regs[1], 0);
    assert_eq!(run("lex $1,6\nlex $2,5\nslt $1,$2\nsys\n").regs[1], 0);
}

#[test]
fn table1_sys_halts() {
    let m = run("sys\nlex $1,1\nsys\n");
    assert_eq!(m.regs[1], 0); // nothing after the first sys executed
    assert!(m.halted);
}

// ---------------------------------------------------------------------
// Table 2: pseudo-instructions behave per their Functionality column.
// ---------------------------------------------------------------------

#[test]
fn table2_br_jump_jumpf_jumpt() {
    // br: unconditional PC-relative.
    let m = run("br over\nlex $1,1\nover: sys\n");
    assert_eq!(m.regs[1], 0);
    // jump: absolute.
    let m = run("jump far\nlex $1,1\nfar: sys\n");
    assert_eq!(m.regs[1], 0);
    // jumpf: jumps only when condition false.
    let m = run("lex $1,0\njumpf $1,far\nlex $2,1\nfar: sys\n");
    assert_eq!(m.regs[2], 0);
    let m = run("lex $1,1\njumpf $1,far\nlex $2,1\nfar: sys\n");
    assert_eq!(m.regs[2], 1);
    // jumpt: jumps only when true.
    let m = run("lex $1,1\njumpt $1,far\nlex $2,1\nfar: sys\n");
    assert_eq!(m.regs[2], 0);
}

// ---------------------------------------------------------------------
// Table 3, row by row (through the integrated machine).
// ---------------------------------------------------------------------

#[test]
fn table3_initializers_and_not() {
    let m = run("one @5\nzero @6\nhad @7,2\nnot @7\nsys\n");
    use tangled_qat::aob::Aob;
    assert_eq!(m.qat.reg(QReg(5)), Aob::ones(8));
    assert_eq!(m.qat.reg(QReg(6)), Aob::zeros(8));
    assert_eq!(m.qat.reg(QReg(7)), Aob::hadamard(8, 2).not_of());
}

#[test]
fn table3_and_or_xor() {
    use tangled_qat::aob::Aob;
    let m = run("had @0,1\nhad @1,4\nand @2,@0,@1\nor @3,@0,@1\nxor @4,@0,@1\nsys\n");
    let (a, b) = (Aob::hadamard(8, 1), Aob::hadamard(8, 4));
    assert_eq!(m.qat.reg(QReg(2)), Aob::and_of(&a, &b));
    assert_eq!(m.qat.reg(QReg(3)), Aob::or_of(&a, &b));
    assert_eq!(m.qat.reg(QReg(4)), Aob::xor_of(&a, &b));
}

#[test]
fn table3_cnot_ccnot() {
    use tangled_qat::aob::Aob;
    // cnot: "@a = XOR(@a, @b)"; ccnot: "@a = XOR(@a, AND(@b, @c))".
    let m = run("had @0,1\nhad @1,4\nhad @2,6\ncnot @0,@1\nccnot @1,@2,@0\nsys\n");
    let h1 = Aob::hadamard(8, 1);
    let h4 = Aob::hadamard(8, 4);
    let h6 = Aob::hadamard(8, 6);
    let a0 = Aob::xor_of(&h1, &h4);
    assert_eq!(m.qat.reg(QReg(0)), a0);
    assert_eq!(m.qat.reg(QReg(1)), Aob::xor_of(&h4, &Aob::and_of(&h6, &a0)));
}

#[test]
fn table3_swap_cswap() {
    use tangled_qat::aob::Aob;
    let m = run("had @0,2\none @1\nswap @0,@1\nsys\n");
    assert_eq!(m.qat.reg(QReg(0)), Aob::ones(8));
    assert_eq!(m.qat.reg(QReg(1)), Aob::hadamard(8, 2));
    // cswap: "where (@c) swap(@a,@b)".
    let m = run("had @0,2\none @1\nhad @2,0\ncswap @0,@1,@2\nsys\n");
    let (mut ea, mut eb) = (Aob::hadamard(8, 2), Aob::ones(8));
    Aob::cswap(&mut ea, &mut eb, &Aob::hadamard(8, 0));
    assert_eq!(m.qat.reg(QReg(0)), ea);
    assert_eq!(m.qat.reg(QReg(1)), eb);
}

#[test]
fn table3_meas() {
    // "meas $d,@a : $d = @a[$d]"
    let m = run("had @9,3\nlex $1,8\nmeas $1,@9\nlex $2,7\nmeas $2,@9\nsys\n");
    assert_eq!(m.regs[1], 1); // bit 3 of 8 is 1
    assert_eq!(m.regs[2], 0); // bit 3 of 7 is 0
}

#[test]
fn table3_next() {
    // "$d = next($d, @a)" with the paper's semantics.
    let m = run("had @9,4\nlex $1,42\nnext $1,@9\nsys\n");
    assert_eq!(m.regs[1], 48);
    // No remaining 1 → 0:
    let m = run("zero @9\nlex $1,5\nnext $1,@9\nsys\n");
    assert_eq!(m.regs[1], 0);
}

#[test]
fn table3_pop_extension() {
    // §2.7's pop: ones strictly after channel $d.
    let m = run("one @9\nlex $1,0\npop $1,@9\nsys\n");
    assert_eq!(m.regs[1], 255); // 256 ones, channel 0 excluded
}

#[test]
fn qat_registers_count_and_isolation() {
    // 256 registers; Qat ops never touch Tangled state except through
    // meas/next/pop.
    let m = run("lex $1,99\none @0\none @255\nhad @128,5\nsys\n");
    assert_eq!(m.regs[1], 99);
    use tangled_qat::aob::Aob;
    assert_eq!(m.qat.reg(QReg(255)), Aob::ones(8));
    assert_eq!(m.qat.reg(QReg(128)), Aob::hadamard(8, 5));
}
