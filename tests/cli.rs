//! End-to-end tests of the `tangled` command-line driver.

use std::process::Command;

fn tangled(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_tangled"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn asm_path(name: &str) -> String {
    format!("{}/examples/asm/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn run_counting_prints_countdown() {
    let (stdout, _, ok) = tangled(&["run", &asm_path("counting.s"), "--ways", "8"]);
    assert!(ok);
    assert!(stdout.contains("5 4 3 2 1"), "{stdout}");
    assert!(stdout.contains("CPI"));
}

#[test]
fn run_factor15_prints_factors() {
    let (stdout, _, ok) = tangled(&["run", &asm_path("factor15.s"), "--ways", "8"]);
    assert!(ok);
    assert!(stdout.contains("5 3"), "{stdout}");
}

#[test]
fn run_options_select_models() {
    let (s4, _, _) = tangled(&["run", &asm_path("counting.s"), "--ways", "8"]);
    let (s5, _, _) =
        tangled(&["run", &asm_path("counting.s"), "--ways", "8", "--stages", "5"]);
    let (mc, _, _) = tangled(&["run", &asm_path("counting.s"), "--ways", "8", "--multicycle"]);
    assert!(s4.contains("Four"));
    assert!(s5.contains("Five"));
    assert!(mc.contains("multi-cycle"));
}

#[test]
fn run_trace_prints_stage_chart() {
    let (stdout, _, ok) = tangled(&["run", &asm_path("counting.s"), "--ways", "8", "--trace"]);
    assert!(ok);
    assert!(stdout.contains(" F "), "{stdout}");
    assert!(stdout.contains(" W "));
}

#[test]
fn factor_command() {
    let (stdout, _, ok) = tangled(&["factor", "15"]);
    assert!(ok);
    assert!(stdout.contains("5 x 3"), "{stdout}");
    let (stdout, _, ok) = tangled(&["factor", "13"]);
    assert!(ok);
    assert!(stdout.contains("prime"), "{stdout}");
    let (stdout, _, ok) = tangled(&["factor", "221"]);
    assert!(ok);
    assert!(stdout.contains("17 x 13"), "{stdout}");
}

#[test]
fn asm_and_dis_roundtrip() {
    let (hex, _, ok) = tangled(&["asm", &asm_path("counting.s")]);
    assert!(ok);
    assert!(hex.split_whitespace().all(|w| u16::from_str_radix(w, 16).is_ok()));
    let (listing, _, ok) = tangled(&["dis", &asm_path("counting.s")]);
    assert!(ok);
    assert!(listing.contains("lex $1,5"));
    assert!(listing.contains("sys"));
}

#[test]
fn errors_are_reported_not_panicked() {
    let (_, stderr, ok) = tangled(&["run", "/nonexistent/prog.s"]);
    assert!(!ok);
    assert!(stderr.contains("tangled:"));
    let (_, stderr, ok) = tangled(&["run", &asm_path("counting.s"), "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown option"));
    let (_, _, ok) = tangled(&["frobnicate"]);
    assert!(!ok);
    let (_, stderr, ok) = tangled(&["factor", "999"]);
    assert!(!ok);
    assert!(stderr.contains("8 bits"));
}

#[test]
fn debugger_scripted_session() {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_tangled"))
        .args(["debug", &asm_path("counting.s"), "--ways", "8"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"s 2\nregs\nb 5\nr\nq 3\nm 0\nl\nbogus\nquit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lex $1,5"), "{text}");
    assert!(text.contains("$1=0x0005"));
    assert!(text.contains("breakpoint at 0005 set"));
    assert!(text.contains("breakpoint at 0005\n") || text.contains("halted"));
    assert!(text.contains("unknown command `bogus`"));
}

#[test]
fn verilog_export() {
    let (v, _, ok) = tangled(&["verilog", "15"]);
    assert!(ok);
    assert!(v.contains("module factor15("));
    assert!(v.contains("output wire [255:0] e"));
    assert!(v.contains("(i >> 7)")); // Figure 7 idiom
    assert!(v.trim_end().ends_with("endmodule"));
}

#[test]
fn vmem_roundtrip_through_cli() {
    // asm --vmem then run the .vmem file: same output as the .s file.
    let (vmem, _, ok) = tangled(&["asm", &asm_path("counting.s"), "--vmem"]);
    assert!(ok);
    assert!(vmem.contains("@0000"));
    let dir = std::env::temp_dir().join("tangled_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("counting.vmem");
    std::fs::write(&path, &vmem).unwrap();
    let (out, _, ok) = tangled(&["run", path.to_str().unwrap(), "--ways", "8"]);
    assert!(ok);
    assert!(out.contains("5 4 3 2 1"), "{out}");
}

#[test]
fn newton_sqrt_converges_in_bfloat16() {
    let (out, _, ok) = tangled(&["run", &asm_path("newton_sqrt.s"), "--ways", "8"]);
    assert!(ok);
    // bf16 sqrt(2): 1.4140625 (the representable value nearest √2).
    assert!(out.contains("1.4140625"), "{out}");
}

#[test]
fn sat_solves_dimacs() {
    let dir = std::env::temp_dir().join("tangled_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let sat_path = dir.join("xor.cnf");
    std::fs::write(&sat_path, "c xor\np cnf 2 2\n1 2 0\n-1 -2 0\n").unwrap();
    let (out, _, ok) = tangled(&["sat", sat_path.to_str().unwrap()]);
    assert!(ok);
    assert!(out.contains("2 model(s)"), "{out}");
    assert!(out.contains("s SATISFIABLE"));
    assert!(out.contains("v 1 -2 0"));
    assert!(out.contains("v -1 2 0"));

    let unsat_path = dir.join("unsat.cnf");
    std::fs::write(&unsat_path, "p cnf 1 2\n1 0\n-1 0\n").unwrap();
    let (out, _, ok) = tangled(&["sat", unsat_path.to_str().unwrap()]);
    assert!(ok);
    assert!(out.contains("s UNSATISFIABLE"));

    let bad_path = dir.join("big.cnf");
    std::fs::write(&bad_path, "p cnf 40 1\n1 0\n").unwrap();
    let (_, stderr, ok) = tangled(&["sat", bad_path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("1..=16"));
}

#[test]
fn serve_runs_jobs_across_workers() {
    let (out, _, ok) = tangled(&[
        "serve",
        &asm_path("counting.s"),
        &asm_path("newton_sqrt.s"),
        "--workers",
        "2",
        "--ways",
        "8",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("conformant"), "{out}");
    assert!(out.contains("counting.s"), "{out}");
    assert!(out.contains("newton_sqrt.s"), "{out}");
    assert!(out.contains("2 job(s)"), "{out}");
}

#[test]
fn qat_fuzz_sigint_drains_and_writes_metrics() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let dir = std::env::temp_dir().join("tangled_cli_sigint_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.json");

    // A campaign far too long to finish on its own; the SIGINT path must
    // stop submission, drain in-flight jobs, and still write the summary
    // artifacts before exiting with the conventional 128+SIGINT code.
    let mut child = Command::new(env!("CARGO_BIN_EXE_qat-fuzz"))
        .args([
            "--seeds",
            "1000000",
            "--len",
            "20",
            "--no-replay",
            "--workers",
            "2",
            "--corpus",
            dir.join("corpus").to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Wait until the campaign banner proves the pool is live, so the
    // signal lands mid-campaign rather than during startup.
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    loop {
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0, "fuzzer exited early");
        if line.starts_with("campaign:") {
            break;
        }
    }

    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());

    // Drain remaining stdout so the child never blocks on a full pipe,
    // then reap it.
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(130), "SIGINT exits 130\n{rest}");
    assert!(rest.contains("interrupted"), "{rest}");

    // The metrics artifact must be present and well-formed even on the
    // interrupt path.
    let doc = std::fs::read_to_string(&metrics).unwrap();
    assert!(doc.contains("\"schema\": \"tangled-metrics/v2\""), "{doc}");
    assert!(doc.trim_start().starts_with('{') && doc.trim_end().ends_with('}'), "{doc}");

    // `--trace` arms the flight recorder, so the SIGINT path also drops
    // a post-mortem bundle (into the corpus dir by default) with the
    // span-ring tail flushed into it.
    let bundle = dir.join("corpus").join("crash-sigint.json");
    let text = std::fs::read_to_string(&bundle)
        .unwrap_or_else(|e| panic!("{}: {e}", bundle.display()));
    let bundle_doc = tangled_qat::bench::json::Json::parse(&text).expect("bundle parses");
    assert_eq!(bundle_doc["schema"].as_str(), Some("tangled-crash/v1"));
    assert_eq!(bundle_doc["reason"].as_str(), Some("sigint"));
    assert!(bundle_doc["snapshot"]["jobs"].as_u64().is_some());
    assert!(
        !bundle_doc["trace"]["events"].as_array().unwrap().is_empty(),
        "span ring not flushed into the SIGINT bundle"
    );
}

/// `tangled serve --live-metrics` streams schema-tagged snapshot lines
/// to stderr and a final summary line at shutdown.
#[test]
fn serve_live_metrics_emits_snapshot_lines() {
    let (out, err, ok) = tangled(&[
        "serve",
        &asm_path("counting.s"),
        &asm_path("counting.s"),
        "--workers",
        "1",
        "--ways",
        "8",
        "--live-metrics=1",
    ]);
    assert!(ok, "{out}{err}");
    let lines: Vec<&str> =
        err.lines().filter(|l| l.contains("\"schema\":\"tangled-live/v1\"")).collect();
    // One line per completed job plus the shutdown summary.
    assert_eq!(lines.len(), 3, "{err}");
    assert!(lines[0].contains("\"seq\":1,\"jobs\":1,"), "{err}");
    assert!(lines[2].contains("\"jobs\":2,"), "{err}");
    for l in &lines {
        assert!(l.contains("\"lat_p50\":"), "{l}");
    }
}

/// The `tangled metrics diff` gate: exit 0 on matching documents, exit 1
/// (with a REGRESS line) once a key moves past its threshold, and per-key
/// overrides/ignores are honored.
#[test]
fn metrics_diff_gate_exit_codes() {
    let dir = std::env::temp_dir().join("tangled_cli_diff_test");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    std::fs::write(&base, r#"{"counters": {"cycles": 100, "insns": 50}, "wall_ns": 10}"#)
        .unwrap();

    // Identical documents pass.
    std::fs::write(&cur, r#"{"counters": {"cycles": 100, "insns": 50}, "wall_ns": 999}"#)
        .unwrap();
    let (out, err, ok) = tangled(&[
        "metrics",
        "diff",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--ignore",
        "wall_ns",
    ]);
    assert!(ok, "{out}{err}");
    assert!(out.contains("0 regressions"), "{out}");

    // A 20% move on a 5% threshold fails with a nonzero exit.
    std::fs::write(&cur, r#"{"counters": {"cycles": 120, "insns": 50}, "wall_ns": 10}"#)
        .unwrap();
    let (out, err, ok) =
        tangled(&["metrics", "diff", base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert!(!ok, "regression must exit nonzero\n{out}");
    assert!(out.contains("REGRESS counters.cycles"), "{out}");
    assert!(err.contains("regressed"), "{err}");

    // ...but a per-key threshold override lets it through.
    let (out, _, ok) = tangled(&[
        "metrics",
        "diff",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--key-threshold",
        "counters.cycles=0.5",
    ]);
    assert!(ok, "{out}");

    // A vanished key is a regression even when every shared key matches.
    std::fs::write(&cur, r#"{"counters": {"cycles": 100}, "wall_ns": 10}"#).unwrap();
    let (out, _, ok) =
        tangled(&["metrics", "diff", base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert!(!ok, "missing key must exit nonzero\n{out}");
    assert!(out.contains("MISSING counters.insns"), "{out}");
}
