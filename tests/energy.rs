//! E13 (§2.2/§5): the adiabatic-logic power argument, measured end-to-end
//! through assembled programs with the coprocessor's energy meter on.

use tangled_qat::asm::{assemble_with, AsmOptions};
use tangled_qat::qat::QatConfig;
use tangled_qat::sim::{Machine, MachineConfig};

fn run_metered(src: &str, macros: bool) -> Machine {
    let opts = AsmOptions { expand_reversible: macros, ..Default::default() };
    let img = assemble_with(src, &opts).unwrap();
    let cfg = MachineConfig {
        qat: QatConfig { meter_energy: true, ..QatConfig::with_ways(8) },
        ..Default::default()
    };
    let mut m = Machine::with_image(cfg, &img.words);
    m.run().unwrap();
    m
}

/// A shuffle network of pure swaps (billiard-ball conservative).
fn swap_kernel() -> String {
    let mut src = String::from("had @1,0\nhad @2,3\nhad @3,5\none @4\n");
    for i in 0..30 {
        let (a, b) = (1 + i % 4, 1 + (i + 1) % 4);
        src.push_str(&format!("swap @{a},@{b}\n"));
    }
    src.push_str("sys\n");
    src
}

#[test]
fn swap_network_is_adiabatically_free() {
    // §2.5: swap "trivially preserves" the number of 0s and 1s — under the
    // adiabatic model the whole shuffle network costs zero net energy,
    // while the conventional (toggle-count) model charges every move.
    let m = run_metered(&swap_kernel(), false);
    let meter = &m.qat.meter;
    assert!(meter.toggles > 0, "swaps moved real bits");
    // Each swap writes two registers whose populations exchange: the
    // per-program imbalance is only what initialization created.
    let init_imbalance = meter.imbalance;
    // Re-run only the initialization to isolate it.
    let init = run_metered("had @1,0\nhad @2,3\nhad @3,5\none @4\nsys\n", false);
    assert_eq!(
        init_imbalance, init.qat.meter.imbalance,
        "the swap portion added zero adiabatic energy"
    );
}

#[test]
fn xor_macro_swaps_cost_adiabatic_energy() {
    // The same network via the §5 xor-swap macro is NOT conservative
    // step-by-step: intermediate xor results change populations, so the
    // adiabatic model charges it more than the native swap datapath.
    let native = run_metered(&swap_kernel(), false);
    let macros = run_metered(&swap_kernel(), true);
    // Architectural agreement first:
    for q in 1..=4u8 {
        assert_eq!(
            native.qat.reg(tangled_qat::isa::QReg(q)),
            macros.qat.reg(tangled_qat::isa::QReg(q))
        );
    }
    assert!(
        macros.qat.meter.imbalance > native.qat.meter.imbalance,
        "xor-swap adiabatic cost {} should exceed native {}",
        macros.qat.meter.imbalance,
        native.qat.meter.imbalance
    );
    assert!(macros.qat.meter.toggles > native.qat.meter.toggles);
}

#[test]
fn not_heavy_code_is_conventionally_expensive() {
    // Inverting a biased register flips every bit: maximal toggle energy
    // AND maximal imbalance — the opposite of the conservative gates.
    let mut src = String::from("zero @1\n");
    for _ in 0..10 {
        src.push_str("not @1\n");
    }
    src.push_str("sys\n");
    let m = run_metered(&src, false);
    // 10 nots × 256 bits, plus nothing for the zero write (0 -> 0).
    assert_eq!(m.qat.meter.toggles, 10 * 256);
    assert_eq!(m.qat.meter.imbalance, 10 * 256);
}

#[test]
fn energy_meter_off_by_default() {
    let img = tangled_qat::asm::assemble("one @1\nnot @1\nsys\n").unwrap();
    let cfg = MachineConfig { qat: QatConfig::with_ways(8), ..Default::default() };
    let mut m = Machine::with_image(cfg, &img.words);
    m.run().unwrap();
    assert_eq!(m.qat.meter.toggles, 0);
    assert_eq!(m.qat.meter.writes, 0);
}
