//! Fault isolation in the serve pool: a core that panics mid-job is
//! injected through the engine registry (`ModelEntry::custom`), and the
//! pool must (a) fail only that job, with a typed [`JobError::Panic`]
//! carrying the payload message, (b) keep the worker alive and keep
//! draining everything else, and (c) shut down within bounded time —
//! never deadlock on a poisoned worker.

use std::sync::mpsc;
use std::sync::Once;
use std::time::{Duration, Instant};

use tangled_qat::serve::{JobError, JobKind, JobSpec, Pool, ServeConfig};
use tangled_qat::sim::difftest::DiffConfig;
use tangled_qat::sim::engine::{Core, ModelEntry, ModelRole};
use tangled_qat::sim::{Machine, SimError, StepEvent};
use tangled_qat::telemetry;

/// A registry-shaped core whose `step` always panics — the worst-case
/// client: not a typed error, an unwind out of the execution engine.
struct PanicCore {
    machine: Machine,
}

impl Core for PanicCore {
    fn name(&self) -> &'static str {
        "panic-core"
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn step(&mut self) -> Result<StepEvent, SimError> {
        panic!("injected core panic");
    }

    fn report(&self) -> String {
        String::new()
    }
}

static PANIC_ENTRY: ModelEntry = ModelEntry::custom(
    "panic-core",
    "test-only core whose step() unwinds",
    ModelRole::Timing,
    |m| Box::new(PanicCore { machine: m }),
);

/// The production registry, plus the synthetic panicking model.
fn resolver(name: &str) -> Option<&'static ModelEntry> {
    if name == "panic-core" {
        Some(&PANIC_ENTRY)
    } else {
        tangled_qat::sim::engine::model(name)
    }
}

/// Worker panics are expected throughout this suite; silence the default
/// hook's backtrace spew so test output stays readable.
fn quiet_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

fn pool(workers: usize) -> Pool {
    Pool::new(ServeConfig { workers, resolve_model: resolver, ..Default::default() })
}

fn words() -> Vec<u16> {
    tangled_qat::asm::assemble("lex $1,5\nadd $1,$1\nsys\n").unwrap().words
}

fn run_job(model: &str, label: &str) -> JobSpec {
    JobSpec {
        kind: JobKind::Run { words: words(), model: model.into() },
        cfg: DiffConfig::default(),
        label: label.into(),
    }
}

#[test]
fn panic_fails_only_its_own_job() {
    quiet_panics();
    telemetry::set_mode(telemetry::Mode::Counters);
    let pool = pool(2);
    // Interleave poisoned and healthy jobs so both workers see both kinds.
    for i in 0..10 {
        let spec = if i % 3 == 0 {
            run_job("panic-core", &format!("bad-{i}"))
        } else {
            run_job("functional", &format!("good-{i}"))
        };
        pool.submit(spec).unwrap();
    }
    let results = pool.drain();
    assert_eq!(results.len(), 10, "every accepted job yields exactly one result");
    for (ix, r) in results.iter().enumerate() {
        assert_eq!(r.id, ix as u64, "ids stay dense despite panics");
        if ix % 3 == 0 {
            match &r.result {
                Err(JobError::Panic(msg)) => {
                    assert!(
                        msg.contains("injected core panic"),
                        "panic payload preserved, got: {msg}"
                    );
                }
                other => panic!("job {ix} should be a typed panic error, got {other:?}"),
            }
        } else {
            let out = r.result.as_ref().expect("healthy job unaffected by neighbours");
            assert!(out.outcome.is_some());
        }
    }
}

#[test]
fn workers_survive_panics_and_keep_serving() {
    quiet_panics();
    telemetry::set_mode(telemetry::Mode::Counters);
    // One worker: the same thread must execute a panic job, survive, and
    // then complete healthy work — proving the unwind never kills it.
    let pool = pool(1);
    for round in 0..3 {
        pool.submit(run_job("panic-core", &format!("bad-{round}"))).unwrap();
        pool.submit(run_job("functional", &format!("good-{round}"))).unwrap();
        let results = pool.drain();
        assert_eq!(results.len(), 2, "drain returns just this round's results");
        let (bad, good) = (&results[0], &results[1]);
        assert!(matches!(bad.result, Err(JobError::Panic(_))));
        assert!(good.result.is_ok());
        assert_eq!(bad.worker, good.worker, "single worker handled both");
    }
}

#[test]
fn shutdown_joins_in_bounded_time_with_panicking_jobs_in_flight() {
    quiet_panics();
    telemetry::set_mode(telemetry::Mode::Counters);
    let pool = pool(4);
    for i in 0..12 {
        let spec = if i % 2 == 0 {
            run_job("panic-core", "bad")
        } else {
            run_job("functional", "good")
        };
        pool.submit(spec).unwrap();
    }
    // Join on a helper thread so a deadlocked shutdown fails the test with
    // a clear message instead of hanging the whole suite.
    let (tx, rx) = mpsc::channel();
    let t0 = Instant::now();
    std::thread::spawn(move || {
        let results = pool.shutdown();
        let _ = tx.send(results);
    });
    let results = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("shutdown must complete in bounded time, not deadlock");
    assert!(t0.elapsed() < Duration::from_secs(30));
    // Shutdown drains: every accepted job is accounted for, completed or
    // cancelled — none silently dropped.
    assert_eq!(results.len(), 12);
    for r in &results {
        match &r.result {
            Ok(out) => assert!(out.outcome.is_some()),
            Err(JobError::Panic(msg)) => assert!(msg.contains("injected core panic")),
            Err(JobError::Cancelled) => {} // discarded before pickup: still a result
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    }
}

#[test]
fn unknown_model_is_typed_not_fatal() {
    telemetry::set_mode(telemetry::Mode::Counters);
    let pool = pool(1);
    pool.submit(run_job("no-such-core", "ghost")).unwrap();
    pool.submit(run_job("functional", "real")).unwrap();
    let results = pool.drain();
    assert_eq!(
        results[0].result,
        Err(JobError::UnknownModel("no-such-core".into()))
    );
    assert!(results[1].result.is_ok());
}
