//! Fault isolation in the serve pool: a core that panics mid-job is
//! injected through the engine registry (`ModelEntry::custom`), and the
//! pool must (a) fail only that job, with a typed [`JobError::Panic`]
//! carrying the payload message, (b) keep the worker alive and keep
//! draining everything else, and (c) shut down within bounded time —
//! never deadlock on a poisoned worker.

use std::sync::mpsc;
use std::sync::Once;
use std::time::{Duration, Instant};

use tangled_qat::bench::json::Json;
use tangled_qat::serve::{
    FlightConfig, JobError, JobKind, JobSpec, LineSink, Pool, ServeConfig, CRASH_SCHEMA,
};
use tangled_qat::sim::difftest::DiffConfig;
use tangled_qat::sim::engine::{Core, ModelEntry, ModelRole};
use tangled_qat::sim::{Machine, SimError, StepEvent};
use tangled_qat::telemetry;

/// A registry-shaped core whose `step` always panics — the worst-case
/// client: not a typed error, an unwind out of the execution engine.
struct PanicCore {
    machine: Machine,
}

impl Core for PanicCore {
    fn name(&self) -> &'static str {
        "panic-core"
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn step(&mut self) -> Result<StepEvent, SimError> {
        panic!("injected core panic");
    }

    fn report(&self) -> String {
        String::new()
    }
}

static PANIC_ENTRY: ModelEntry = ModelEntry::custom(
    "panic-core",
    "test-only core whose step() unwinds",
    ModelRole::Timing,
    |m| Box::new(PanicCore { machine: m }),
);

/// The production registry, plus the synthetic panicking model.
fn resolver(name: &str) -> Option<&'static ModelEntry> {
    if name == "panic-core" {
        Some(&PANIC_ENTRY)
    } else {
        tangled_qat::sim::engine::model(name)
    }
}

/// Worker panics are expected throughout this suite; silence the default
/// hook's backtrace spew so test output stays readable.
fn quiet_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

fn pool(workers: usize) -> Pool {
    Pool::new(ServeConfig { workers, resolve_model: resolver, ..Default::default() })
}

fn words() -> Vec<u16> {
    tangled_qat::asm::assemble("lex $1,5\nadd $1,$1\nsys\n").unwrap().words
}

fn run_job(model: &str, label: &str) -> JobSpec {
    JobSpec {
        kind: JobKind::Run { words: words(), model: model.into() },
        cfg: DiffConfig::default(),
        label: label.into(),
    }
}

#[test]
fn panic_fails_only_its_own_job() {
    quiet_panics();
    telemetry::set_mode(telemetry::Mode::Counters);
    let pool = pool(2);
    // Interleave poisoned and healthy jobs so both workers see both kinds.
    for i in 0..10 {
        let spec = if i % 3 == 0 {
            run_job("panic-core", &format!("bad-{i}"))
        } else {
            run_job("functional", &format!("good-{i}"))
        };
        pool.submit(spec).unwrap();
    }
    let results = pool.drain();
    assert_eq!(results.len(), 10, "every accepted job yields exactly one result");
    for (ix, r) in results.iter().enumerate() {
        assert_eq!(r.id, ix as u64, "ids stay dense despite panics");
        if ix % 3 == 0 {
            match &r.result {
                Err(JobError::Panic(msg)) => {
                    assert!(
                        msg.contains("injected core panic"),
                        "panic payload preserved, got: {msg}"
                    );
                }
                other => panic!("job {ix} should be a typed panic error, got {other:?}"),
            }
        } else {
            let out = r.result.as_ref().expect("healthy job unaffected by neighbours");
            assert!(out.outcome.is_some());
        }
    }
}

#[test]
fn workers_survive_panics_and_keep_serving() {
    quiet_panics();
    telemetry::set_mode(telemetry::Mode::Counters);
    // One worker: the same thread must execute a panic job, survive, and
    // then complete healthy work — proving the unwind never kills it.
    let pool = pool(1);
    for round in 0..3 {
        pool.submit(run_job("panic-core", &format!("bad-{round}"))).unwrap();
        pool.submit(run_job("functional", &format!("good-{round}"))).unwrap();
        let results = pool.drain();
        assert_eq!(results.len(), 2, "drain returns just this round's results");
        let (bad, good) = (&results[0], &results[1]);
        assert!(matches!(bad.result, Err(JobError::Panic(_))));
        assert!(good.result.is_ok());
        assert_eq!(bad.worker, good.worker, "single worker handled both");
    }
}

#[test]
fn shutdown_joins_in_bounded_time_with_panicking_jobs_in_flight() {
    quiet_panics();
    telemetry::set_mode(telemetry::Mode::Counters);
    let pool = pool(4);
    for i in 0..12 {
        let spec = if i % 2 == 0 {
            run_job("panic-core", "bad")
        } else {
            run_job("functional", "good")
        };
        pool.submit(spec).unwrap();
    }
    // Join on a helper thread so a deadlocked shutdown fails the test with
    // a clear message instead of hanging the whole suite.
    let (tx, rx) = mpsc::channel();
    let t0 = Instant::now();
    std::thread::spawn(move || {
        let results = pool.shutdown();
        let _ = tx.send(results);
    });
    let results = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("shutdown must complete in bounded time, not deadlock");
    assert!(t0.elapsed() < Duration::from_secs(30));
    // Shutdown drains: every accepted job is accounted for, completed or
    // cancelled — none silently dropped.
    assert_eq!(results.len(), 12);
    for r in &results {
        match &r.result {
            Ok(out) => assert!(out.outcome.is_some()),
            Err(JobError::Panic(msg)) => assert!(msg.contains("injected core panic")),
            Err(JobError::Cancelled) => {} // discarded before pickup: still a result
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
    }
}

/// A panicking job with a flight recorder attached leaves a parseable
/// `crash-<jobid>.json` post-mortem: the failing spec (enough to
/// re-submit the job), the dying job's scoped metrics, the recorder
/// snapshot, and the recently completed job ids.
#[test]
fn panic_writes_a_parseable_crash_bundle() {
    quiet_panics();
    telemetry::set_mode(telemetry::Mode::Counters);
    let dir = std::env::temp_dir().join(format!("tangled-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pool = Pool::new(ServeConfig {
        workers: 1,
        resolve_model: resolver,
        flight: Some(FlightConfig {
            interval: 0,
            crash_dir: Some(dir.clone()),
            sink: LineSink::Null,
        }),
        ..Default::default()
    });
    // Two healthy jobs first so the bundle has recent completions, then
    // the poisoned one.
    pool.submit(run_job("functional", "good-0")).unwrap();
    pool.submit(run_job("functional", "good-1")).unwrap();
    pool.submit(run_job("panic-core", "doomed")).unwrap();
    let results = pool.drain();
    assert!(matches!(results[2].result, Err(JobError::Panic(_))));

    let bundle_path = dir.join(format!("crash-{}.json", results[2].id));
    let text = std::fs::read_to_string(&bundle_path)
        .unwrap_or_else(|e| panic!("{}: {e}", bundle_path.display()));
    let doc = Json::parse(&text).expect("crash bundle parses as JSON");
    assert_eq!(doc["schema"].as_str(), Some(CRASH_SCHEMA));
    assert_eq!(doc["reason"].as_str(), Some("panic"));
    assert_eq!(doc["job"]["id"].as_u64(), Some(results[2].id));
    assert_eq!(doc["job"]["label"].as_str(), Some("doomed"));
    assert!(doc["job"]["error"].as_str().unwrap().contains("injected core panic"));
    // The spec section re-describes the job precisely.
    assert_eq!(doc["spec"]["kind"].as_str(), Some("run"));
    assert_eq!(doc["spec"]["model"].as_str(), Some("panic-core"));
    assert!(!doc["spec"]["words"].as_str().unwrap().is_empty());
    // The snapshot saw the two healthy completions before the crash, and
    // their ids are in the recent-completions ring.
    assert_eq!(doc["snapshot"]["jobs"].as_u64(), Some(2));
    let recent: Vec<u64> =
        doc["recent_completed"].as_array().unwrap().iter().filter_map(|v| v.as_u64()).collect();
    assert_eq!(recent, vec![results[0].id, results[1].id]);
    // Counters mode records no spans; the trace section is present but empty.
    assert_eq!(doc["trace"]["events"].as_array().unwrap().len(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_model_is_typed_not_fatal() {
    telemetry::set_mode(telemetry::Mode::Counters);
    let pool = pool(1);
    pool.submit(run_job("no-such-core", "ghost")).unwrap();
    pool.submit(run_job("functional", "real")).unwrap();
    let results = pool.drain();
    assert_eq!(
        results[0].result,
        Err(JobError::UnknownModel("no-such-core".into()))
    );
    assert!(results[1].result.is_ok());
}
