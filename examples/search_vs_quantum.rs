//! Superposed database search, PBP style, against the quantum baseline.
//!
//! Task: find every x in 0..256 with f(x) = (x*x + 3x) mod 256 == 40.
//! PBP evaluates f over an 8-way entangled superposition once and reads
//! out ALL solutions non-destructively with `next`. The quantum baseline
//! holds the same answers in superposition but each destructive
//! measurement returns one sample — seeing all of them is a
//! coupon-collector process, and no number of runs gives a guarantee.
//!
//! Run with: `cargo run --example search_vs_quantum`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tangled_qat::pbp::PbpContext;
use tangled_qat::qsim::{expected_runs_to_collect_all, runs_to_collect_all, QState};

fn main() {
    // ------------------------------------------------------------------
    // PBP: one pass, all answers.
    // ------------------------------------------------------------------
    let mut ctx = PbpContext::new(8);
    let x = ctx.pint_h(8, 0x00FF); // x = 0..255, channel e carries x = e
    let xx = ctx.pint_mul(&x, &x); // x^2   (16 bits)
    let three = ctx.pint_mk(2, 3);
    let x3 = ctx.pint_mul(&x, &three); // 3x (10 bits)
    let sum = ctx.pint_add(&xx, &x3); // x^2 + 3x
    let sum8 = ctx.pint_resize(&sum, 8); // mod 256 = take low 8 pbits
    let target = ctx.pint_mk(8, 40);
    let hit = ctx.pint_eq(&sum8, &target);

    let solutions: Vec<u64> = ctx
        .pint_measure_where(&x, &hit)
        .into_iter()
        .map(|v| v.value)
        .collect();
    println!("== PBP search: f(x) = x^2+3x mod 256 == 40 ==");
    println!("solutions found in ONE non-destructive pass: {solutions:?}");
    for &s in &solutions {
        assert_eq!((s * s + 3 * s) % 256, 40, "x={s}");
    }
    // Exhaustive check that nothing was missed.
    let expect: Vec<u64> = (0..256u64).filter(|&v| (v * v + 3 * v) % 256 == 40).collect();
    assert_eq!(solutions, expect);
    println!("exhaustive oracle agrees: {} solutions, none missed\n", expect.len());

    // ------------------------------------------------------------------
    // Quantum baseline: the post-oracle state holds the same solutions,
    // but measurement collapses.
    // ------------------------------------------------------------------
    let k = solutions.len() as u64;
    let state = QState::uniform_over(8, &solutions);
    let mut rng = StdRng::seed_from_u64(2026);
    println!("== quantum baseline (state vector, destructive measurement) ==");
    println!(
        "one run returns ONE sample; expected runs to see all {k}: {:.2}",
        expected_runs_to_collect_all(k)
    );
    let trials = 200;
    let total: u64 = (0..trials)
        .map(|_| runs_to_collect_all(&state, &solutions, &mut rng))
        .sum();
    println!(
        "measured over {trials} trials: mean {:.2} runs (PBP needed exactly 1)",
        total as f64 / trials as f64
    );
    println!(
        "state-vector memory: {} bytes vs one 256-bit pbit per predicate",
        state.memory_bytes()
    );
}
