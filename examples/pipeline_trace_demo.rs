//! Pipeline-diagram walkthrough: the textbook stage chart for the hazards
//! §3.1 says the students wrestled with — variable-length fetch bubbles,
//! coprocessor-coupled data hazards, and branch squash — drawn from the
//! cycle-accurate model's trace.
//!
//! Run with: `cargo run --example pipeline_trace_demo`

use tangled_qat::asm::assemble;
use tangled_qat::qat::QatConfig;
use tangled_qat::sim::{trace, Machine, MachineConfig, PipelineConfig, PipelinedSim, StageCount};

fn show(title: &str, src: &str, cfg: PipelineConfig) {
    let img = assemble(src).expect("assembles");
    let mcfg = MachineConfig { qat: QatConfig::with_ways(8), ..Default::default() };
    let mut sim = PipelinedSim::with_trace(Machine::with_image(mcfg, &img.words), cfg);
    let stats = sim.run().expect("halts");
    println!("== {title} ==");
    println!(
        "{} instructions, {} cycles (CPI {:.2}); {} fetch bubbles, {} data stalls, {} control stalls",
        stats.insns, stats.cycles, stats.cpi(),
        stats.fetch_extra, stats.data_stalls, stats.control_stalls
    );
    print!("{}", trace::render(sim.trace.as_ref().unwrap(), cfg, 30));
    println!();
}

fn main() {
    let four = PipelineConfig::default();
    let four_nofw = PipelineConfig { forwarding: false, ..four };
    let five = PipelineConfig { stages: StageCount::Five, ..four };

    // 1. The ideal diagonal.
    show("ideal: independent one-word instructions", "lex $1,1\nlex $2,2\nlex $3,3\nsys\n", four);

    // 2. Two-word Qat instructions occupy IF twice (the variable-length
    //    fetch the paper calls the most common student question).
    show(
        "variable-length fetch: two-word Qat instructions",
        "zero @1\nand @2,@1,@1\nxor @3,@2,@1\nsys\n",
        four,
    );

    // 3. The coprocessor-coupled hazard: meas feeds an add. With
    //    forwarding the value bypasses; without it the add waits for WB.
    let coupled = "had @5,0\nlex $1,3\nmeas $1,@5\nadd $1,$1\nsys\n";
    show("meas -> add with forwarding", coupled, four);
    show("meas -> add WITHOUT forwarding (interlock visible)", coupled, four_nofw);

    // 4. Branch squash: two bubbles after a taken branch.
    show(
        "taken branch: two-cycle redirect",
        "lex $1,1\nbrt $1,over\nlex $2,9\nlex $3,9\nover: sys\n",
        four,
    );

    // 5. The 5-stage load-use bubble.
    show(
        "5-stage load-use hazard",
        "li $2,0x4000\nli $1,7\nstore $1,$2\nload $3,$2\nadd $3,$3\nsys\n",
        five,
    );
}
