//! 4-queens as exhaustive SAT on the PBP model — 16 variables, one per
//! board square, exactly matching the paper's 16-way entanglement limit.
//! One symbolic evaluation of the constraints covers all 65,536 candidate
//! boards; non-destructive read-out lists every solution.
//!
//! Run with: `cargo run --example four_queens_sat`

use tangled_qat::pbp::{Cnf, PbpContext};

const N: u32 = 4;

fn var(row: u32, col: u32) -> u32 {
    row * N + col
}

fn build_four_queens() -> Cnf {
    let mut cnf = Cnf::new(N * N);
    // One queen per row.
    for r in 0..N {
        let row: Vec<u32> = (0..N).map(|c| var(r, c)).collect();
        cnf.at_least_one(&row);
        cnf.at_most_one(&row);
    }
    // At most one queen per column.
    for c in 0..N {
        let col: Vec<u32> = (0..N).map(|r| var(r, c)).collect();
        cnf.at_most_one(&col);
    }
    // At most one per diagonal (both directions).
    for d in -(N as i32 - 1)..(N as i32) {
        let diag1: Vec<u32> = (0..N as i32)
            .filter_map(|r| {
                let c = r + d;
                (0..N as i32).contains(&c).then(|| var(r as u32, c as u32))
            })
            .collect();
        if diag1.len() > 1 {
            cnf.at_most_one(&diag1);
        }
        let diag2: Vec<u32> = (0..N as i32)
            .filter_map(|r| {
                let c = (N as i32 - 1 - r) + d;
                (0..N as i32).contains(&c).then(|| var(r as u32, c as u32))
            })
            .collect();
        if diag2.len() > 1 {
            cnf.at_most_one(&diag2);
        }
    }
    cnf
}

fn print_board(assignment: u64) {
    for r in 0..N {
        let mut line = String::new();
        for c in 0..N {
            line.push(if (assignment >> var(r, c)) & 1 == 1 { 'Q' } else { '.' });
            line.push(' ');
        }
        println!("  {line}");
    }
}

fn main() {
    let cnf = build_four_queens();
    println!(
        "4-queens as SAT: {} variables, {} clauses",
        cnf.num_vars,
        cnf.clauses.len()
    );

    // 16-way entanglement: the paper's full hardware size (65,536-bit AoB).
    let mut ctx = PbpContext::new(16);

    // #SAT without enumerating anything: one pop over the predicate.
    let count = ctx.sat_count(&cnf);
    println!("model count via one POP: {count} (4-queens has exactly 2 solutions)");
    assert_eq!(count, 2);

    // And the solutions themselves, via next-chained non-destructive
    // measurement of the same predicate:
    let solutions = ctx.sat_assignments(&cnf);
    for (i, s) in solutions.iter().enumerate() {
        println!("solution {}:", i + 1);
        print_board(*s);
    }
    assert_eq!(solutions.len(), 2);
    // The two solutions are mirror images.
    for s in &solutions {
        for r in 0..N {
            let row_bits = (s >> (r * N)) & 0xF;
            assert_eq!(row_bits.count_ones(), 1);
        }
    }
    println!("predicate storage: {} runs (vs 65,536 explicit bits)",
        ctx.sat_predicate(&cnf).storage_runs());
}
