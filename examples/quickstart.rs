//! Quickstart: the paper's Figure 9 word-level prime factoring of 15,
//! plus the Figure 1 AoB representation basics.
//!
//! Run with: `cargo run --example quickstart`

use tangled_qat::aob::Aob;
use tangled_qat::pbp::{PbpContext, Pint};

fn main() {
    // ------------------------------------------------------------------
    // Figure 1: the AoB representation of entangled superposition.
    // ------------------------------------------------------------------
    println!("== Figure 1: two 2-way entangled pbits ==");
    let lo = Aob::hadamard(2, 0); // {0,1,0,1}
    let hi = Aob::hadamard(2, 1); // {0,0,1,1}
    print!("channels (lo,hi) encode values: ");
    for e in 0..4u64 {
        let v = lo.meas(e) as u64 | ((hi.meas(e) as u64) << 1);
        print!("{v} ");
    }
    println!("\n(four equiprobable values, each 1/4 probability)\n");

    // ------------------------------------------------------------------
    // Figure 9: word-level prime factoring of 15.
    // ------------------------------------------------------------------
    println!("== Figure 9: pint word-level factoring of 15 ==");
    let mut ctx = PbpContext::new(8); // 8-way entanglement universe
    let a = ctx.pint_mk(4, 15); //        pint a = pint_mk(4, 15);
    let b = ctx.pint_h(4, 0x0f); //       pint b = pint_h(4, 0x0f);
    let c = ctx.pint_h(4, 0xf0); //       pint c = pint_h(4, 0xf0);
    let d = ctx.pint_mul(&b, &c); //      pint d = pint_mul(b, c);
    let e = ctx.pint_eq(&d, &a); //       pint e = pint_eq(d, a);
    let e_pint = Pint::from_bits(vec![e.clone()]);
    let f = ctx.pint_mul(&e_pint, &b); // pint f = pint_mul(e, b);

    // pint_measure(f): non-destructive — reads ALL superposed values.
    print!("pint_measure(f) prints: ");
    for v in ctx.pint_measure(&f) {
        print!("{} ", v.value);
    }
    println!(" (paper: \"prints 0, 1, 3, 5, 15\")");

    // §4.2's shortcut: the answers are already encoded in e's 1-valued
    // entanglement channels — no final multiply needed.
    print!("factors read from e's channels: ");
    for v in ctx.pint_measure_where(&b, &e) {
        print!("{} ", v.value);
    }
    println!();

    // The measurement is NON-destructive: do it again, nothing collapsed.
    let again = ctx.pint_measure_where(&b, &e);
    assert_eq!(again.len(), 4);
    println!("measured again (no collapse): still {} values\n", again.len());

    // ------------------------------------------------------------------
    // The §2.7 worked example: had / lex / next.
    // ------------------------------------------------------------------
    println!("== §2.7 worked example ==");
    let a123 = Aob::hadamard(16, 4); // had @123,4
    let d = 42u64; //                   lex $8,42
    // `next` reports "none" as a typed Option; the ISA folds it to 0.
    let r = a123.next(d).unwrap_or(0); // next $8,@123
    println!("had @123,4 ; lex $8,42 ; next $8,@123  =>  $8 = {r} (paper: 48)");
    assert_eq!(r, 48);
}
