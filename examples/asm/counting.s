; Countdown demo: prints 5 4 3 2 1 using the sys print-int service, then
; halts. Exercises branches, the assembler pseudo-instructions, and the
; repo-defined sys ABI.
        li   $1,5          ; counter
        lex  $2,-1         ; decrement
        lex  $rv,1         ; sys service: print $0 as int
loop:   copy $0,$1
        sys                ; print
        add  $1,$2
        brt  $1,loop
        lex  $rv,0
        sys                ; halt
