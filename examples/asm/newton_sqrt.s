; Newton-Raphson square root of 2 in bfloat16 on the Tangled float unit:
;   x' = 0.5 * (x + a/x)
; Exercises float/addf/mulf/recip end-to-end. Result (~1.414) is printed
; with the sys print-float service, then converted to int (1) and halted.
        .equ HALF,0x3F00    ; bfloat16 0.5
        lex  $1,2
        float $1            ; a = 2.0
        lex  $2,1
        float $2            ; x = 1.0 (initial guess)
        li   $3,HALF        ; 0.5
        lex  $4,5           ; 5 iterations
        lex  $5,-1
loop:   copy $6,$1          ; a
        copy $7,$2
        recip $7            ; 1/x
        mulf $6,$7          ; a/x
        addf $6,$2          ; x + a/x
        mulf $6,$3          ; * 0.5
        copy $2,$6
        add  $4,$5
        brt  $4,loop
        lex  $rv,2          ; print bfloat16 in $0
        copy $0,$2
        sys
        lex  $rv,0
        sys
