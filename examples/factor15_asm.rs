//! The paper's Figure 10 — prime factoring 15 in Tangled/Qat assembly —
//! run verbatim on all three simulators, next to the same program produced
//! by this repo's gate compiler.
//!
//! Run with: `cargo run --example factor15_asm`

use tangled_qat::asm::assemble;
use tangled_qat::gatec::factor::{compile_factoring, FIGURE_10};
use tangled_qat::gatec::Compiler;
use tangled_qat::qat::QatConfig;
use tangled_qat::sim::{
    Machine, MachineConfig, MultiCycleSim, PipelineConfig, PipelinedSim, StageCount,
};

fn machine(words: &[u16]) -> Machine {
    let cfg = MachineConfig { qat: QatConfig::with_ways(8), ..Default::default() };
    Machine::with_image(cfg, words)
}

fn main() {
    // The paper's listing ends at the final `and`; append `sys` to halt.
    let fig10 = format!("{FIGURE_10}sys\n");
    let img = assemble(&fig10).expect("Figure 10 assembles");
    println!("Figure 10: {} instructions, {} words", fig10.lines().count(), img.words.len());

    // Functional (single-cycle) run.
    let mut m = machine(&img.words);
    m.run().unwrap();
    println!("functional:  $0 = {}  $1 = {}   (paper comments: ;5 ;3)", m.regs[0], m.regs[1]);
    assert_eq!((m.regs[0], m.regs[1]), (5, 3));

    // Multi-cycle.
    let mut mc = MultiCycleSim::new(machine(&img.words));
    let st = mc.run().unwrap();
    println!(
        "multi-cycle: $0 = {}  $1 = {}   {} cycles, CPI {:.2}",
        mc.machine.regs[0], mc.machine.regs[1], st.cycles, st.cpi()
    );

    // Pipelined, both organizations.
    for (name, stages) in [("4-stage", StageCount::Four), ("5-stage", StageCount::Five)] {
        let cfg = PipelineConfig { stages, forwarding: true, ..Default::default() };
        let mut p = PipelinedSim::new(machine(&img.words), cfg);
        let st = p.run().unwrap();
        println!(
            "{name} pipe: $0 = {}  $1 = {}   {} cycles, CPI {:.3} ({} fetch bubbles, {} data stalls, {} control stalls)",
            p.machine.regs[0], p.machine.regs[1], st.cycles, st.cpi(),
            st.fetch_extra, st.data_stalls, st.control_stalls
        );
    }

    // The @80 predicate register holds e: its 1-channels ARE the answers.
    let e = m.qat.reg(tangled_qat::isa::QReg(80));
    let ones: Vec<u64> = e.enumerate_ones().into_iter().filter(|&c| c < 256).collect();
    println!("e = @80 one-channels (mod 256): {ones:?}  -> factors {:?}",
        ones.iter().map(|c| c & 15).collect::<Vec<_>>());

    // Now the same computation, but produced by this repo's gate compiler.
    let compiled = compile_factoring(15, 4, &Compiler::default()).unwrap();
    let cimg = assemble(&compiled.asm).unwrap();
    let mut cm = machine(&cimg.words);
    cm.run().unwrap();
    println!(
        "\ngate compiler: {} Qat instructions (Figure 10 used 82), $0 = {} $1 = {}",
        compiled.qat_insns, cm.regs[0], cm.regs[1]
    );
    assert_eq!((cm.regs[0], cm.regs[1]), (5, 3));
}
