//! The paper's Figure 10 — prime factoring 15 in Tangled/Qat assembly —
//! run verbatim on all three simulators, next to the same program produced
//! by this repo's gate compiler.
//!
//! Run with: `cargo run --example factor15_asm`
//!
//! With `--metrics-out FILE` and/or `--trace-out FILE` the run also
//! emits the telemetry exports: a `tangled-metrics/v2` counter snapshot
//! covering every simulator invocation, and a Chrome `trace_event` JSON
//! of the 4-stage pipelined run (load it in https://ui.perfetto.dev).
//!
//! `--qat-backend eager|interned|sparse-re` selects the Qat register-file
//! storage backend (with sparse-re the same program also runs at 20-way
//! entanglement — the §3.3 beyond-WAYS scaling, registers never
//! materialized).

use tangled_qat::asm::assemble;
use tangled_qat::gatec::factor::{compile_factoring, FIGURE_10};
use tangled_qat::gatec::Compiler;
use tangled_qat::qat::{QatConfig, StorageBackend};
use tangled_qat::sim::{
    Machine, MachineConfig, MultiCycleSim, PipelineConfig, PipelinedSim, StageCount,
};
use tangled_qat::telemetry::{self, export};

/// Telemetry runs also meter switching energy so `energy.*` totals land
/// in the metrics file.
static METER_ENERGY: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Backend selected by `--qat-backend` (raw `u8` of the enum; default
/// interned).
static BACKEND: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(1);

fn backend() -> StorageBackend {
    StorageBackend::ALL[BACKEND.load(std::sync::atomic::Ordering::Relaxed) as usize]
}

fn machine_at(words: &[u16], ways: u32) -> Machine {
    let qat = QatConfig {
        meter_energy: METER_ENERGY.load(std::sync::atomic::Ordering::Relaxed),
        ..QatConfig::with_backend(backend(), ways)
    };
    let cfg = MachineConfig { qat, ..Default::default() };
    Machine::with_image(cfg, words)
}

fn machine(words: &[u16]) -> Machine {
    machine_at(words, 8)
}

fn parse_out_args() -> (Option<String>, Option<String>) {
    let (mut metrics_out, mut trace_out) = (None, None);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--metrics-out" => metrics_out = Some(it.next().expect("--metrics-out needs a path")),
            "--trace-out" => trace_out = Some(it.next().expect("--trace-out needs a path")),
            "--qat-backend" => {
                let b = it.next().expect("--qat-backend needs a value");
                let b = StorageBackend::parse(&b)
                    .unwrap_or_else(|| panic!("unknown Qat backend `{b}`"));
                let idx = StorageBackend::ALL.iter().position(|&x| x == b).unwrap();
                BACKEND.store(idx as u8, std::sync::atomic::Ordering::Relaxed);
            }
            other => panic!(
                "unknown argument `{other}` (takes --metrics-out/--trace-out/--qat-backend)"
            ),
        }
    }
    (metrics_out, trace_out)
}

fn main() {
    let (metrics_out, trace_out) = parse_out_args();
    let mode = if trace_out.is_some() {
        telemetry::Mode::Trace
    } else if metrics_out.is_some() {
        telemetry::Mode::Counters
    } else {
        telemetry::Mode::Off
    };
    telemetry::set_mode(mode);
    METER_ENERGY.store(mode != telemetry::Mode::Off, std::sync::atomic::Ordering::Relaxed);
    let telemetry_base = telemetry::Snapshot::take();

    // The paper's listing ends at the final `and`; append `sys` to halt.
    let fig10 = format!("{FIGURE_10}sys\n");
    let img = assemble(&fig10).expect("Figure 10 assembles");
    println!("Figure 10: {} instructions, {} words", fig10.lines().count(), img.words.len());

    // Functional (single-cycle) run.
    let mut m = machine(&img.words);
    m.run().unwrap();
    println!("functional:  $0 = {}  $1 = {}   (paper comments: ;5 ;3)", m.regs[0], m.regs[1]);
    assert_eq!((m.regs[0], m.regs[1]), (5, 3));

    // The RE-compressed backend scales past the 16-way AoB limit: rerun
    // the same program at 20-way entanglement without ever materializing
    // a 2^20-bit vector.
    if backend() == StorageBackend::SparseRe {
        let mut wide = machine_at(&img.words, 20);
        wide.run().unwrap();
        println!(
            "sparse-re @ 20 ways: $0 = {}  $1 = {}   ({} materializations)",
            wide.regs[0],
            wide.regs[1],
            wide.qat.materializations()
        );
        assert_eq!((wide.regs[0], wide.regs[1]), (m.regs[0], m.regs[1]));
        assert_eq!(wide.qat.materializations(), 0);
    }

    // Multi-cycle.
    let mut mc = MultiCycleSim::new(machine(&img.words));
    let st = mc.run().unwrap();
    println!(
        "multi-cycle: $0 = {}  $1 = {}   {} cycles, CPI {:.2}",
        mc.machine.regs[0], mc.machine.regs[1], st.cycles, st.cpi()
    );

    // Pipelined, both organizations. The Chrome trace exports the 4-stage
    // run only: each simulator restarts its cycle clock at 0, so mixing
    // runs on one timeline would interleave unrelated spans.
    let mut trace_log = telemetry::TraceLog::default();
    for (name, stages) in [("4-stage", StageCount::Four), ("5-stage", StageCount::Five)] {
        let cfg = PipelineConfig { stages, forwarding: true, ..Default::default() };
        let _ = telemetry::take_trace(); // isolate this run's span events
        let mut p = PipelinedSim::new(machine(&img.words), cfg);
        let st = p.run().unwrap();
        if stages == StageCount::Four {
            trace_log = telemetry::take_trace();
        }
        println!(
            "{name} pipe: $0 = {}  $1 = {}   {} cycles, CPI {:.3} ({} fetch bubbles, {} data stalls, {} control stalls)",
            p.machine.regs[0], p.machine.regs[1], st.cycles, st.cpi(),
            st.fetch_extra, st.data_stalls, st.control_stalls
        );
    }

    // The @80 predicate register holds e: its 1-channels ARE the answers.
    let e = m.qat.reg(tangled_qat::isa::QReg(80));
    let ones: Vec<u64> = e.enumerate_ones().into_iter().filter(|&c| c < 256).collect();
    println!("e = @80 one-channels (mod 256): {ones:?}  -> factors {:?}",
        ones.iter().map(|c| c & 15).collect::<Vec<_>>());

    // Now the same computation, but produced by this repo's gate compiler.
    let compiled = compile_factoring(15, 4, &Compiler::default()).unwrap();
    let cimg = assemble(&compiled.asm).unwrap();
    let mut cm = machine(&cimg.words);
    cm.run().unwrap();
    println!(
        "\ngate compiler: {} Qat instructions (Figure 10 used 82), $0 = {} $1 = {}",
        compiled.qat_insns, cm.regs[0], cm.regs[1]
    );
    assert_eq!((cm.regs[0], cm.regs[1]), (5, 3));

    if mode != telemetry::Mode::Off {
        let snap = telemetry::Snapshot::take().delta(&telemetry_base);
        let _ = telemetry::take_trace(); // discard events from later runs
        if let Some(path) = &metrics_out {
            let doc = export::MetricsDoc {
                snapshot: &snap,
                mode,
                trace_events: trace_log.events.len() as u64,
                trace_dropped: trace_log.dropped,
                v1_compat: false,
            };
            std::fs::write(path, export::metrics_json(&doc)).expect("write metrics");
            println!("wrote {path}");
        }
        if let Some(path) = &trace_out {
            let threads = [(0, "IF"), (1, "ID"), (2, "EX"), (4, "WB")];
            std::fs::write(path, export::chrome_trace(&trace_log, &threads)).expect("write trace");
            println!("wrote {path}");
        }
    }
}
