//! Beyond 16-way entanglement: the paper's scaling story, end to end.
//!
//! Qat's hardware stops at 16-way (65,536-bit AoB registers). For more,
//! §1.2/§5 prescribe software that treats AoB blocks as symbols of
//! compressed patterns. This example runs the same computation at E = 16,
//! 24, 32, and 40 on both software representations:
//!
//! * the flat RE (run-length × repetition) form, and
//! * the nested tree form (the §5 "regular patterns of AoB blocks"
//!   future work),
//!
//! and shows storage staying flat while the explicit form would grow to
//! 137 GB.
//!
//! Run with: `cargo run --example beyond_16_way`

use tangled_qat::pbp::{PbpContext, TreeCtx};

fn main() {
    println!(
        "{:>4} {:>16} {:>10} {:>12} {:>14} {:>12}",
        "E", "explicit bytes", "RE runs", "tree nodes", "pop(predicate)", "next(0)"
    );
    for e in [16u32, 24, 32, 40] {
        // Predicate: "bit 5 of the channel is set AND bit E-1 is set,
        // XOR bit E-2" — structured, like real PBP intermediate values.
        let mut ctx = PbpContext::new(e);
        let a = ctx.hadamard(5);
        let b = ctx.hadamard(e - 1);
        let c = ctx.hadamard(e - 2);
        let ab = ctx.and(&a, &b);
        let v = ctx.xor(&ab, &c);

        let mut t = TreeCtx::new();
        let ta = t.hadamard(e, 5);
        let tb = t.hadamard(e, e - 1);
        let tc = t.hadamard(e, e - 2);
        let tab = t.and(&ta, &tb).expect("same universe");
        let tv = t.xor(&tab, &tc).expect("same universe");

        // Both representations agree on every summary:
        assert_eq!(ctx.re_pop_all(&v), t.pop_all(&tv));
        assert_eq!(ctx.re_next(&v, 0), t.next(&tv, 0));
        assert_eq!(ctx.re_get(&v, 12345), t.get(&tv, 12345));

        let explicit = (1u64 << e) / 8;
        println!(
            "{:>4} {:>16} {:>10} {:>12} {:>14} {:>12}",
            e,
            explicit,
            v.storage_runs(),
            t.node_count(),
            t.pop_all(&tv),
            t.next(&tv, 0).unwrap_or(0),
        );
    }

    println!("\nThe flat RE's single-level limit, and the tree lifting it:");
    // H(6) AND H(39) at E=40 over mismatched small/large periods.
    let mut t = TreeCtx::new();
    let a = t.hadamard(40, 6);
    let b = t.hadamard(40, 39);
    let c = t.and(&a, &b).expect("same universe");
    println!(
        "  tree: H(6) & H(39) at E=40 -> {} nodes, pop = 2^38 = {}, first answer channel {}",
        t.node_count(),
        t.pop_all(&c),
        t.next(&c, 0).unwrap_or(0)
    );
    let mut ctx = PbpContext::new(40);
    let fa = ctx.hadamard(6);
    let fb = ctx.hadamard(39);
    // Silence the expected panic's backtrace while probing the limit.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let refused =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.and(&fa, &fb))).is_err();
    std::panic::set_hook(prev_hook);
    println!(
        "  flat RE: the same op {} (single-level representation budget)",
        if refused { "is refused with a clear diagnostic" } else { "unexpectedly succeeded" }
    );
    assert!(refused);

    // Finale: the full Figure 9 factoring algorithm at 20-way — beyond the
    // paper's 16-way hardware — entirely on nested patterns.
    println!("\nFactoring 899 with 10-bit operands (20-way, 1,048,576 channels):");
    let mut t = TreeCtx::new();
    let n = t.tpint_mk(20, 10, 899);
    let b = t.tpint_h(20, 10, 0);
    let c = t.tpint_h(20, 10, 10);
    let d = t.tpint_mul(&b, &c).expect("same universe");
    let e = t.tpint_eq(&d, &n).expect("same universe");
    let factors = t.tpint_measure_where(&b, &e, 100);
    println!(
        "  factors {factors:?} from {} shared nodes ({} factor-pair channels)",
        t.node_count(),
        t.pop_all(&e)
    );
    assert_eq!(factors, vec![1, 29, 31, 899]);
}

