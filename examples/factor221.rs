//! Factoring 221 — the software prototype's original problem (§4.1),
//! needing the full 16-way entanglement of the paper's hardware — end to
//! end: word-level PBP, compiled assembly on the cycle-accurate pipeline,
//! and the RE-compression numbers that make it cheap.
//!
//! Run with: `cargo run --release --example factor221`

use tangled_qat::asm::assemble;
use tangled_qat::gatec::factor::compile_factoring;
use tangled_qat::gatec::Compiler;
use tangled_qat::pbp::PbpContext;
use tangled_qat::qat::QatConfig;
use tangled_qat::sim::{Machine, MachineConfig, PipelineConfig, PipelinedSim};

fn main() {
    // ------------------------------------------------------------------
    // Word-level, on the RE-compressed engine.
    // ------------------------------------------------------------------
    let mut ctx = PbpContext::new(16);
    let n = ctx.pint_mk(8, 221);
    let b = ctx.pint_h_auto(8); // dims 0..8
    let c = ctx.pint_h_auto(8); // dims 8..16
    let d = ctx.pint_mul(&b, &c);
    let e = ctx.pint_eq(&d, &n);
    let factors = ctx.pint_measure_where(&b, &e);
    println!("== PBP word level (16-way, 65,536 channels) ==");
    print!("factors of 221: ");
    for v in &factors {
        print!("{} ", v.value);
    }
    println!("\n(221 = 13 x 17; 1 and 221 are the trivial factors)");
    println!(
        "e stored as {} runs; probability of e=1: {}/65536\n",
        e.storage_runs(),
        ctx.re_pop_all(&e)
    );

    // ------------------------------------------------------------------
    // Compiled to Tangled/Qat assembly, run on the pipelined simulator
    // with full-size 65,536-bit AoB registers.
    // ------------------------------------------------------------------
    let prog = compile_factoring(221, 8, &Compiler::default()).unwrap();
    let img = assemble(&prog.asm).unwrap();
    let cfg = MachineConfig { qat: QatConfig::paper(), ..Default::default() };
    let mut p = PipelinedSim::new(Machine::with_image(cfg, &img.words), PipelineConfig::default());
    let st = p.run().unwrap();
    println!("== compiled Tangled/Qat assembly on the 4-stage pipeline ==");
    println!("{} Qat gate instructions, e in @{}", prog.qat_insns, prog.e_reg);
    println!(
        "retired {} instructions in {} cycles (CPI {:.3})",
        st.insns, st.cycles, st.cpi()
    );
    println!(
        "non-trivial factors: $0 = {}  $1 = {}",
        p.machine.regs[0], p.machine.regs[1]
    );
    assert_eq!((p.machine.regs[0], p.machine.regs[1]), (17, 13));

    // Functional-model cross-check.
    let cfg = MachineConfig { qat: QatConfig::paper(), ..Default::default() };
    let mut m = Machine::with_image(cfg, &img.words);
    m.run().unwrap();
    assert_eq!(m.regs, p.machine.regs);
    println!("functional model agrees.");
}
