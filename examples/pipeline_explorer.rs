//! Pipeline design-space explorer: the §3.1 implementation study as a
//! table. Runs characteristic kernels over every pipeline organization
//! (4/5-stage × forwarding on/off) and the multi-cycle baseline, printing
//! CPI and stall breakdowns — the numbers behind "capable of sustaining
//! completion of one instruction every clock cycle, provided there were no
//! pipeline interlocks".
//!
//! Run with: `cargo run --example pipeline_explorer`

use tangled_qat::asm::assemble;
use tangled_qat::gatec::factor::FIGURE_10;
use tangled_qat::qat::QatConfig;
use tangled_qat::sim::{
    Machine, MachineConfig, MultiCycleSim, PipelineConfig, PipelinedSim, StageCount,
};

fn kernels() -> Vec<(&'static str, String)> {
    let mut straight = String::new();
    for i in 0..200 {
        straight.push_str(&format!("lex ${},{}\n", i % 8, i % 100));
    }
    straight.push_str("sys\n");

    let mut chain = String::from("lex $1,1\n");
    for _ in 0..200 {
        chain.push_str("add $1,$1\n");
    }
    chain.push_str("sys\n");

    let loopy = "li $1,100\nlex $2,-1\nloop: add $3,$1\nadd $1,$2\nbrt $1,loop\nsys\n".to_string();

    let mut qat_heavy = String::from("had @1,0\nhad @2,3\n");
    for i in 0..60 {
        qat_heavy.push_str(&format!("and @{},@1,@2\n", 3 + i % 100));
    }
    qat_heavy.push_str("sys\n");

    let mut load_use = String::from("li $2,0x4000\nli $1,7\nstore $1,$2\n");
    for _ in 0..50 {
        load_use.push_str("load $3,$2\nadd $3,$3\n");
    }
    load_use.push_str("sys\n");

    vec![
        ("straight-line", straight),
        ("dependence chain", chain),
        ("counted loop", loopy),
        ("Qat two-word heavy", qat_heavy),
        ("load-use pairs", load_use),
        ("Figure 10 factoring", format!("{FIGURE_10}sys\n")),
    ]
}

fn main() {
    let configs = [
        ("4fw", PipelineConfig { stages: StageCount::Four, forwarding: true, ..Default::default() }),
        ("4nofw", PipelineConfig { stages: StageCount::Four, forwarding: false, ..Default::default() }),
        ("5fw", PipelineConfig { stages: StageCount::Five, forwarding: true, ..Default::default() }),
        ("5nofw", PipelineConfig { stages: StageCount::Five, forwarding: false, ..Default::default() }),
    ];
    println!(
        "{:<20} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "kernel (CPI)", "insns", "4fw", "4nofw", "5fw", "5nofw", "multi"
    );
    for (name, src) in kernels() {
        let img = assemble(&src).expect("kernel assembles");
        let mut row = format!("{name:<20}");
        let mut insns = 0;
        let mut cpis = Vec::new();
        for (_, cfg) in configs {
            let mcfg = MachineConfig { qat: QatConfig::with_ways(8), ..Default::default() };
            let mut p = PipelinedSim::new(Machine::with_image(mcfg, &img.words), cfg);
            let st = p.run().unwrap();
            insns = st.insns;
            cpis.push(st.cpi());
        }
        let mcfg = MachineConfig { qat: QatConfig::with_ways(8), ..Default::default() };
        let mut mc = MultiCycleSim::new(Machine::with_image(mcfg, &img.words));
        let mst = mc.run().unwrap();
        row.push_str(&format!(" {insns:>7}"));
        for c in cpis {
            row.push_str(&format!(" {c:>8.3}"));
        }
        row.push_str(&format!(" {:>8.3}", mst.cpi()));
        println!("{row}");
    }

    // Detailed stall anatomy for the Figure 10 program.
    println!("\nFigure 10 stall anatomy (4-stage, forwarding):");
    let img = assemble(&format!("{FIGURE_10}sys\n")).unwrap();
    let mcfg = MachineConfig { qat: QatConfig::with_ways(8), ..Default::default() };
    let mut p = PipelinedSim::new(Machine::with_image(mcfg, &img.words), PipelineConfig::default());
    let st = p.run().unwrap();
    println!(
        "  {} insns ({} Qat, {} two-word) in {} cycles\n  \
         {} fetch bubbles, {} data stalls, {} control stalls, {} taken branches",
        st.insns, st.qat_insns, st.two_word_insns, st.cycles,
        st.fetch_extra, st.data_stalls, st.control_stalls, st.taken
    );
    assert_eq!((p.machine.regs[0], p.machine.regs[1]), (5, 3));
}
